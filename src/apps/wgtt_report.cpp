// wgtt-report: analyzer for the BENCH_*.json reports the sweep benches emit.
//
//   wgtt-report show FILE
//       Pretty-print one report: sweep header, per-run metrics table, the
//       fault-injection / controller-liveness counters (chaos sweeps only),
//       and the aggregated host-time profile (where simulator CPU went).
//
//   wgtt-report diff BASELINE CURRENT [--tolerance PCT] [--soft]
//                    [--budget-ms MS]
//       Compare two reports of the same bench.  Schema mismatches (different
//       bench id, run count, or run labels) always fail with exit 2.
//       Performance regressions — sweep wall time, per-run wall time, or an
//       aggregated profile section slower than baseline by more than the
//       tolerance (default 25 %) — fail with exit 1, or only warn when
//       --soft is given (CI runners are noisy; schema breaks are not).
//       --budget-ms MS adds a hard per-row wall-time budget: every run row
//       of CURRENT must finish within MS milliseconds.  Budget violations
//       fail with exit 1 even under --soft — the budget is an absolute
//       ceiling chosen with noise headroom, unlike the relative tolerance,
//       so exceeding it always means the hot path got slower.
//       Deterministic simulation outputs (goodput, switch counts) that drift
//       between same-seed reports are reported as warnings.
//
//   wgtt-report packets FILE [--limit N] [--switches]
//       Analyze a per-packet flight-recorder JSONL (the --packets output of
//       the benches): per-packet latency waterfalls, aggregate time-in-layer,
//       and a drop/duplicate autopsy table.  Chaos runs additionally get a
//       fault-window table: uid-0 fault_on/fault_off markers paired per
//       (node, kind, peer), each window credited with the fault_injected
//       drop records it caused.  With --switches, pairs the uid-0
//       switch_start/switch_done markers into switch windows — liveness
//       failovers are flagged reason=ap_suspect — and attributes every
//       packet whose lifecycle stalled across one.
//
// Exit codes: 0 ok / warnings only, 1 performance regression, 2 schema or
// usage error.
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/fault_plan.h"
#include "util/json.h"

namespace {

using wgtt::JsonValue;

struct ProfileTotals {
  std::vector<std::pair<std::string, std::int64_t>> sections;  // sorted desc
  std::int64_t total_ns = 0;
};

// Sum each profile section's self_ns across all runs of a report.
ProfileTotals aggregate_profile(const JsonValue& report) {
  std::map<std::string, std::int64_t> acc;
  if (const JsonValue* runs = report.find("runs"); runs && runs->is_array()) {
    for (const JsonValue& run : runs->as_array()) {
      const JsonValue* profile = run.find("profile");
      if (!profile) continue;
      const JsonValue* sections = profile->find("sections");
      if (!sections || !sections->is_object()) continue;
      for (const auto& [name, sec] : sections->as_object()) {
        acc[name] += static_cast<std::int64_t>(sec.number_or("self_ns", 0.0));
      }
    }
  }
  ProfileTotals out;
  for (const auto& [name, ns] : acc) {
    out.sections.emplace_back(name, ns);
    out.total_ns += ns;
  }
  std::sort(out.sections.begin(), out.sections.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

bool load_report(const std::string& path, JsonValue& out) {
  std::string text;
  if (!wgtt::read_text_file(path, text)) {
    std::fprintf(stderr, "wgtt-report: cannot read %s\n", path.c_str());
    return false;
  }
  std::string error;
  if (!wgtt::json_parse(text, out, &error)) {
    std::fprintf(stderr, "wgtt-report: %s: JSON parse error: %s\n",
                 path.c_str(), error.c_str());
    return false;
  }
  if (!out.is_object() || !out.find("bench") || !out.find("runs") ||
      !out.find("runs")->is_array()) {
    std::fprintf(stderr,
                 "wgtt-report: %s: not a bench report (missing \"bench\" or "
                 "\"runs\")\n",
                 path.c_str());
    return false;
  }
  return true;
}

int cmd_show(const std::string& path) {
  JsonValue report;
  if (!load_report(path, report)) return 2;

  std::printf("bench:  %s\n", report.string_or("bench", "?").c_str());
  std::printf("title:  %s\n", report.string_or("title", "").c_str());
  std::printf("jobs:   %d    wall: %.1f ms\n",
              static_cast<int>(report.number_or("jobs", 0.0)),
              report.number_or("wall_ms", 0.0));
  if (const JsonValue* summary = report.find("summary");
      summary && summary->is_object() && !summary->as_object().empty()) {
    std::printf("summary:\n");
    for (const auto& [k, v] : summary->as_object()) {
      if (v.is_number()) std::printf("  %-32s %.4g\n", k.c_str(), v.as_number());
    }
  }

  const auto& runs = report.find("runs")->as_array();
  std::printf("\n%-28s %-22s %10s %8s %9s %9s %10s\n", "run", "policy",
              "goodput", "loss", "accuracy", "switches", "wall_ms");
  for (const JsonValue& run : runs) {
    std::printf("%-28s %-22s %10.2f %8.3f %9.3f %9d %10.1f\n",
                run.string_or("label", "?").c_str(),
                run.string_or("policy", "-").c_str(),
                run.number_or("goodput_mbps", 0.0),
                run.number_or("udp_loss_rate", 0.0),
                run.number_or("switching_accuracy", 0.0),
                static_cast<int>(run.number_or("switches", 0.0)),
                run.number_or("wall_ms", 0.0));
  }

  // Chaos sweeps carry fault.* and controller.liveness.* counters in each
  // run's metrics snapshot; sum them so one glance shows how much adversity
  // the sweep injected and how the controller coped.  Fault-free reports
  // have none and skip the section.
  std::map<std::string, double> chaos;
  for (const JsonValue& run : runs) {
    const JsonValue* metrics = run.find("metrics");
    if (!metrics) continue;
    const JsonValue* counters = metrics->find("counters");
    if (!counters || !counters->is_object()) continue;
    for (const auto& [name, v] : counters->as_object()) {
      if (!v.is_number()) continue;
      if (name.rfind("fault.", 0) == 0 ||
          name.rfind("controller.liveness.", 0) == 0) {
        chaos[name] += v.as_number();
      }
    }
  }
  if (!chaos.empty()) {
    std::printf("\nchaos (fault + liveness counters, summed over runs):\n");
    for (const auto& [name, v] : chaos) {
      std::printf("  %-36s %.0f\n", name.c_str(), v);
    }
  }

  const ProfileTotals profile = aggregate_profile(report);
  if (!profile.sections.empty()) {
    // Top-N by exclusive self-time: the tail sections are timer noise and
    // bury the hot ones in long reports.
    constexpr std::size_t kTopSections = 12;
    const std::size_t shown = std::min(profile.sections.size(), kTopSections);
    std::printf("\nprofile (host self-time, all runs, top %zu of %zu):\n",
                shown, profile.sections.size());
    std::printf("%-28s %12s %7s\n", "section", "self_ms", "share");
    std::int64_t shown_ns = 0;
    for (std::size_t i = 0; i < shown; ++i) {
      const auto& [name, ns] = profile.sections[i];
      shown_ns += ns;
      std::printf("%-28s %12.1f %6.1f%%\n", name.c_str(),
                  static_cast<double>(ns) / 1e6,
                  profile.total_ns > 0
                      ? 100.0 * static_cast<double>(ns) /
                            static_cast<double>(profile.total_ns)
                      : 0.0);
    }
    if (shown < profile.sections.size()) {
      const std::int64_t rest_ns = profile.total_ns - shown_ns;
      std::printf("%-28s %12.1f %6.1f%%\n",
                  ("+" + std::to_string(profile.sections.size() - shown) +
                   " more")
                      .c_str(),
                  static_cast<double>(rest_ns) / 1e6,
                  profile.total_ns > 0
                      ? 100.0 * static_cast<double>(rest_ns) /
                            static_cast<double>(profile.total_ns)
                      : 0.0);
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// packets: flight-recorder JSONL analysis
// ---------------------------------------------------------------------------

struct FlightRec {
  std::uint64_t uid = 0;
  double t_us = 0.0;
  std::string hop;
  std::int64_t node = 0;
  std::string cause;                              // empty when none
  std::vector<std::pair<std::string, std::int64_t>> extras;
};

// Map a hop name onto the simulator layer its latency is charged to.
const char* layer_of(const std::string& hop) {
  if (hop.rfind("transport_", 0) == 0) return "transport";
  if (hop.rfind("ctrl_", 0) == 0 || hop == "dedup_suppress") {
    return "controller";
  }
  if (hop.rfind("backhaul_", 0) == 0) return "backhaul";
  if (hop.rfind("ap_", 0) == 0) return "ap_queue";
  if (hop.rfind("mac_", 0) == 0) return "mac";
  if (hop.rfind("switch_", 0) == 0) return "switch";
  if (hop.rfind("fault_", 0) == 0) return "fault";
  return "?";
}

bool load_packet_log(const std::string& path, std::vector<FlightRec>& out) {
  std::string text;
  if (!wgtt::read_text_file(path, text)) {
    std::fprintf(stderr, "wgtt-report: cannot read %s\n", path.c_str());
    return false;
  }
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string_view line(text.data() + pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    JsonValue v;
    std::string error;
    if (!wgtt::json_parse(line, v, &error) || !v.is_object()) {
      std::fprintf(stderr, "wgtt-report: %s:%zu: bad record: %s\n",
                   path.c_str(), line_no, error.c_str());
      return false;
    }
    FlightRec rec;
    rec.uid = static_cast<std::uint64_t>(v.number_or("uid", 0.0));
    rec.t_us = v.number_or("t_us", 0.0);
    rec.hop = v.string_or("hop", "?");
    rec.node = static_cast<std::int64_t>(v.number_or("node", 0.0));
    rec.cause = v.string_or("cause", "");
    for (const auto& [k, val] : v.as_object()) {
      if (k == "uid" || k == "t_us" || k == "hop" || k == "node" ||
          k == "cause" || !val.is_number()) {
        continue;
      }
      rec.extras.emplace_back(k, static_cast<std::int64_t>(val.as_number()));
    }
    out.push_back(std::move(rec));
  }
  return true;
}

struct SwitchWindow {
  double start_us = 0.0;
  double done_us = 0.0;
  std::int64_t client = -1;
  std::int64_t from = -1;
  std::int64_t to = -1;
  std::int64_t gap_us = 0;
  bool failover = false;  // liveness-driven (reason=ap_suspect) switch
  std::size_t stalled_packets = 0;
  double max_stall_us = 0.0;
};

struct FaultWindow {
  double on_us = 0.0;
  double off_us = -1.0;  // < 0: never cleared before the log ended
  std::int64_t node = -1;
  std::int64_t kind = -1;
  std::int64_t peer = 0;
  std::size_t drops = 0;  // fault_injected drop records inside the window
};

const char* fault_kind_name(std::int64_t kind) {
  using wgtt::sim::FaultKind;
  if (kind < 0 || kind > static_cast<std::int64_t>(FaultKind::kCsiGarbage)) {
    return "?";
  }
  return wgtt::sim::to_string(static_cast<FaultKind>(kind));
}

std::int64_t extra_or(const FlightRec& r, const char* key,
                      std::int64_t fallback) {
  for (const auto& [k, v] : r.extras) {
    if (k == key) return v;
  }
  return fallback;
}

int cmd_packets(const std::string& path, std::size_t waterfall_limit,
                bool switches) {
  std::vector<FlightRec> recs;
  if (!load_packet_log(path, recs)) return 2;

  // Group per packet.  Records were appended in simulated-time order, so
  // each per-uid vector is already a time-ordered waterfall.
  std::map<std::uint64_t, std::vector<const FlightRec*>> packets;
  std::vector<const FlightRec*> markers;
  for (const FlightRec& r : recs) {
    if (r.uid == 0) {
      markers.push_back(&r);
    } else {
      packets[r.uid].push_back(&r);
    }
  }

  std::printf("packet log: %s\n", path.c_str());
  std::printf("records: %zu   packets: %zu   markers: %zu\n", recs.size(),
              packets.size(), markers.size());

  // --- aggregate time-in-layer -------------------------------------------
  // Each inter-record delta is charged to the layer of the *later* record:
  // the time it took the packet to reach that hop.
  std::map<std::string, std::pair<double, std::size_t>> layer_us;
  std::size_t drops = 0, dups = 0;
  for (const auto& [uid, hops] : packets) {
    for (std::size_t i = 0; i < hops.size(); ++i) {
      if (!hops[i]->cause.empty()) {
        hops[i]->cause == "duplicate" ? ++dups : ++drops;
      }
      if (i == 0) continue;
      auto& [us, n] = layer_us[layer_of(hops[i]->hop)];
      us += hops[i]->t_us - hops[i - 1]->t_us;
      ++n;
    }
  }
  if (!layer_us.empty()) {
    double total_us = 0.0;
    for (const auto& [layer, acc] : layer_us) total_us += acc.first;
    std::printf("\ntime in layer (inter-hop latency charged to the arriving "
                "layer):\n");
    std::printf("%-12s %14s %8s %10s\n", "layer", "total_ms", "share",
                "hops");
    for (const auto& [layer, acc] : layer_us) {
      std::printf("%-12s %14.3f %7.1f%% %10zu\n", layer.c_str(),
                  acc.first / 1e3,
                  total_us > 0 ? 100.0 * acc.first / total_us : 0.0,
                  acc.second);
    }
  }

  // --- per-packet latency waterfalls -------------------------------------
  std::size_t shown = 0;
  for (const auto& [uid, hops] : packets) {
    if (shown >= waterfall_limit) break;
    ++shown;
    std::printf("\npacket uid %" PRIu64 " (%zu hops, %.3f ms end-to-end):\n",
                uid, hops.size(),
                (hops.back()->t_us - hops.front()->t_us) / 1e3);
    std::printf("  %12s %10s %-16s %5s  %s\n", "t_us", "dt_us", "hop", "node",
                "detail");
    double prev = hops.front()->t_us;
    for (const FlightRec* r : hops) {
      std::string detail;
      for (const auto& [k, v] : r->extras) {
        if (!detail.empty()) detail += " ";
        detail += k + "=" + std::to_string(v);
      }
      if (!r->cause.empty()) {
        if (!detail.empty()) detail += " ";
        detail += "cause=" + r->cause;
      }
      std::printf("  %12.3f %10.3f %-16s %5" PRId64 "  %s\n", r->t_us,
                  r->t_us - prev, r->hop.c_str(), r->node, detail.c_str());
      prev = r->t_us;
    }
  }
  if (shown < packets.size()) {
    std::printf("\n(%zu more packets; raise --limit to print them)\n",
                packets.size() - shown);
  }

  // --- drop / duplicate autopsy ------------------------------------------
  std::printf("\nautopsy: %zu drop record(s), %zu duplicate record(s)\n",
              drops, dups);
  if (drops + dups > 0) {
    constexpr std::size_t kMaxAutopsyRows = 200;
    std::printf("%-10s %12s %-10s %-16s %5s  %s\n", "uid", "t_us", "layer",
                "hop", "node", "cause");
    std::size_t rows = 0;
    for (const FlightRec& r : recs) {
      if (r.uid == 0 || r.cause.empty()) continue;
      if (rows++ >= kMaxAutopsyRows) continue;
      std::printf("%-10" PRIu64 " %12.3f %-10s %-16s %5" PRId64 "  %s\n",
                  r.uid, r.t_us, layer_of(r.hop), r.hop.c_str(), r.node,
                  r.cause.c_str());
    }
    if (rows > kMaxAutopsyRows) {
      std::printf("(+%zu more autopsy rows)\n", rows - kMaxAutopsyRows);
    }
  }

  // --- fault windows -----------------------------------------------------
  // Chaos runs emit uid-0 fault_on/fault_off markers.  Pair them per
  // (node, kind, peer) and credit each window with the fault_injected drop
  // records landing inside it; fault-free logs skip the section entirely.
  std::vector<FaultWindow> faults;
  for (const FlightRec* m : markers) {
    if (m->hop == "fault_on") {
      FaultWindow w;
      w.on_us = m->t_us;
      w.node = m->node;
      w.kind = extra_or(*m, "kind", -1);
      w.peer = extra_or(*m, "peer", 0);
      faults.push_back(w);
    } else if (m->hop == "fault_off") {
      const std::int64_t kind = extra_or(*m, "kind", -1);
      const std::int64_t peer = extra_or(*m, "peer", 0);
      // Close the most recent still-open window of the same identity; the
      // injector never overlaps identical windows, so this is unambiguous.
      for (auto it = faults.rbegin(); it != faults.rend(); ++it) {
        if (it->off_us < 0.0 && it->node == m->node && it->kind == kind &&
            it->peer == peer) {
          it->off_us = m->t_us;
          break;
        }
      }
    }
  }
  if (!faults.empty()) {
    std::size_t fault_drops = 0;
    for (const FlightRec& r : recs) {
      if (r.uid == 0 || r.cause != "fault_injected") continue;
      ++fault_drops;
      for (FaultWindow& w : faults) {
        if (r.t_us >= w.on_us && (w.off_us < 0.0 || r.t_us < w.off_us)) {
          ++w.drops;  // earliest covering window claims the drop
          break;
        }
      }
    }
    std::printf("\nfault windows: %zu (%zu fault_injected drop record(s)):\n",
                faults.size(), fault_drops);
    std::printf("%12s %12s %-14s %5s %5s %7s\n", "on_us", "off_us", "kind",
                "node", "peer", "drops");
    for (const FaultWindow& w : faults) {
      char off[32];
      if (w.off_us < 0.0) {
        std::snprintf(off, sizeof(off), "%12s", "open");
      } else {
        std::snprintf(off, sizeof(off), "%12.3f", w.off_us);
      }
      std::printf("%12.3f %s %-14s %5" PRId64 " %5" PRId64 " %7zu\n", w.on_us,
                  off, fault_kind_name(w.kind), w.node, w.peer, w.drops);
    }
  }

  // --- switch-gap attribution --------------------------------------------
  if (switches) {
    std::vector<SwitchWindow> windows;
    std::map<std::int64_t, SwitchWindow> open;  // per client
    for (const FlightRec* m : markers) {
      const std::int64_t client = extra_or(*m, "client", -1);
      if (m->hop == "switch_start") {
        SwitchWindow w;
        w.start_us = m->t_us;
        w.client = client;
        w.from = extra_or(*m, "from", -1);
        w.to = extra_or(*m, "to", -1);
        w.failover = extra_or(*m, "failover", 0) != 0;
        open[client] = w;
      } else if (m->hop == "switch_done") {
        auto it = open.find(client);
        if (it == open.end()) continue;
        SwitchWindow w = it->second;
        open.erase(it);
        w.done_us = m->t_us;
        w.gap_us = extra_or(*m, "gap_us", 0);
        windows.push_back(w);
      }
    }
    // A packet "stalled across" a switch when the gap between two of its
    // consecutive records overlaps the switch window.
    for (SwitchWindow& w : windows) {
      for (const auto& [uid, hops] : packets) {
        double worst = 0.0;
        for (std::size_t i = 1; i < hops.size(); ++i) {
          const double lo = hops[i - 1]->t_us;
          const double hi = hops[i]->t_us;
          if (lo < w.done_us && hi > w.start_us) {
            worst = std::max(worst, hi - lo);
          }
        }
        if (worst > 0.0) {
          ++w.stalled_packets;
          w.max_stall_us = std::max(w.max_stall_us, worst);
        }
      }
    }
    std::printf("\nswitches: %zu completed window(s)%s\n", windows.size(),
                open.empty() ? "" : " (+unfinished)");
    if (!windows.empty()) {
      std::printf("%12s %12s %7s %5s %4s %4s %-10s %9s %13s\n", "start_us",
                  "done_us", "gap_us", "client", "from", "to", "reason",
                  "stalled", "max_stall_us");
      for (const SwitchWindow& w : windows) {
        std::printf("%12.3f %12.3f %7" PRId64 " %5" PRId64 " %4" PRId64
                    " %4" PRId64 " %-10s %9zu %13.3f\n",
                    w.start_us, w.done_us, w.gap_us, w.client, w.from, w.to,
                    w.failover ? "ap_suspect" : "esnr", w.stalled_packets,
                    w.max_stall_us);
      }
    }
  }
  return 0;
}

struct DiffState {
  double tolerance_pct = 25.0;
  double budget_ms = 0.0;  // <= 0: no per-row budget
  bool soft = false;
  int regressions = 0;
  int warnings = 0;

  // Hard per-row wall-time budget: an absolute ceiling on CURRENT rows,
  // deliberately immune to --soft.  The relative check above answers "did
  // this get slower than it was?"; the budget answers "is this still as
  // fast as the optimized hot path promises?", and a soft run must not be
  // able to wave that away.
  void check_budget(const std::string& what, double cur) {
    if (budget_ms <= 0.0) return;
    if (cur <= budget_ms) return;
    std::printf("FAIL  %-40s %10.2f ms over hard budget %.2f ms\n",
                what.c_str(), cur, budget_ms);
    ++regressions;
  }

  // A wall-time (or section-time) comparison: regression when current
  // exceeds baseline by more than the tolerance.  Sub-millisecond baselines
  // are pure scheduling noise and only ever warn.
  void check_time(const std::string& what, double base, double cur) {
    if (base <= 0.0) return;
    const double ratio = cur / base;
    const bool over = ratio > 1.0 + tolerance_pct / 100.0;
    if (!over) return;
    const bool noise_floor = base < 1.0;
    if (noise_floor) {
      std::printf("WARN  %-40s %10.2f -> %10.2f ms (%.2fx, below noise "
                  "floor)\n",
                  what.c_str(), base, cur, ratio);
      ++warnings;
      return;
    }
    std::printf("%s  %-40s %10.2f -> %10.2f ms (%.2fx > %.0f%% tolerance)\n",
                soft ? "WARN" : "FAIL", what.c_str(), base, cur, ratio,
                tolerance_pct);
    if (soft) {
      ++warnings;
    } else {
      ++regressions;
    }
  }

  void warn_drift(const std::string& what, double base, double cur) {
    std::printf("WARN  %-40s %g -> %g (same-seed metric drift)\n",
                what.c_str(), base, cur);
    ++warnings;
  }
};

int cmd_diff(const std::string& base_path, const std::string& cur_path,
             DiffState st) {
  JsonValue base, cur;
  if (!load_report(base_path, base) || !load_report(cur_path, cur)) return 2;

  // --- schema gate: the reports must describe the same sweep --------------
  const std::string base_bench = base.string_or("bench", "");
  const std::string cur_bench = cur.string_or("bench", "");
  if (base_bench != cur_bench) {
    std::fprintf(stderr,
                 "wgtt-report: bench id mismatch: \"%s\" vs \"%s\"\n",
                 base_bench.c_str(), cur_bench.c_str());
    return 2;
  }
  const auto& base_runs = base.find("runs")->as_array();
  const auto& cur_runs = cur.find("runs")->as_array();
  if (base_runs.size() != cur_runs.size()) {
    std::fprintf(stderr, "wgtt-report: run count mismatch: %zu vs %zu\n",
                 base_runs.size(), cur_runs.size());
    return 2;
  }
  for (std::size_t i = 0; i < base_runs.size(); ++i) {
    const std::string bl = base_runs[i].string_or("label", "");
    const std::string cl = cur_runs[i].string_or("label", "");
    if (bl != cl) {
      std::fprintf(stderr,
                   "wgtt-report: run %zu label mismatch: \"%s\" vs \"%s\"\n",
                   i, bl.c_str(), cl.c_str());
      return 2;
    }
    // Comparing runs produced by different handoff policies is apples to
    // oranges: goodput/switch deltas would be policy differences, not
    // regressions.  (Pre-policy reports lack the field; "" matches "".)
    const std::string bp = base_runs[i].string_or("policy", "");
    const std::string cp = cur_runs[i].string_or("policy", "");
    if (bp != cp) {
      std::fprintf(
          stderr,
          "wgtt-report: run \"%s\" policy mismatch: \"%s\" vs \"%s\"\n",
          bl.c_str(), bp.c_str(), cp.c_str());
      return 2;
    }
  }

  std::printf("diff %s: %s -> %s (tolerance %.0f%%%s", base_bench.c_str(),
              base_path.c_str(), cur_path.c_str(), st.tolerance_pct,
              st.soft ? ", soft" : "");
  if (st.budget_ms > 0.0) {
    std::printf(", hard budget %.0f ms/row", st.budget_ms);
  }
  std::printf(")\n");

  // --- deterministic outputs: same seed should mean same numbers ----------
  for (std::size_t i = 0; i < base_runs.size(); ++i) {
    const std::string label = base_runs[i].string_or("label", "?");
    const double bg = base_runs[i].number_or("goodput_mbps", 0.0);
    const double cg = cur_runs[i].number_or("goodput_mbps", 0.0);
    if (std::fabs(cg - bg) > 0.01 * std::max(std::fabs(bg), 1e-9)) {
      st.warn_drift(label + " goodput_mbps", bg, cg);
    }
    const double bs = base_runs[i].number_or("switches", 0.0);
    const double cs = cur_runs[i].number_or("switches", 0.0);
    if (bs != cs) st.warn_drift(label + " switches", bs, cs);
  }

  // --- performance: sweep wall, per-run wall, profile sections ------------
  st.check_time("sweep wall_ms", base.number_or("wall_ms", 0.0),
                cur.number_or("wall_ms", 0.0));
  for (std::size_t i = 0; i < base_runs.size(); ++i) {
    st.check_time(base_runs[i].string_or("label", "?") + " wall_ms",
                  base_runs[i].number_or("wall_ms", 0.0),
                  cur_runs[i].number_or("wall_ms", 0.0));
    st.check_budget(cur_runs[i].string_or("label", "?") + " wall_ms",
                    cur_runs[i].number_or("wall_ms", 0.0));
  }

  const ProfileTotals base_prof = aggregate_profile(base);
  const ProfileTotals cur_prof = aggregate_profile(cur);
  for (const auto& [name, base_ns] : base_prof.sections) {
    // Sections under 1 % of the baseline total are timer noise; skip them.
    if (base_prof.total_ns <= 0 || base_ns * 100 < base_prof.total_ns) {
      continue;
    }
    std::int64_t cur_ns = 0;
    for (const auto& [cn, cv] : cur_prof.sections) {
      if (cn == name) {
        cur_ns = cv;
        break;
      }
    }
    st.check_time("profile " + name, static_cast<double>(base_ns) / 1e6,
                  static_cast<double>(cur_ns) / 1e6);
  }

  if (st.regressions > 0) {
    std::printf("result: %d regression(s), %d warning(s)\n", st.regressions,
                st.warnings);
    return 1;
  }
  std::printf("result: ok (%d warning(s))\n", st.warnings);
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: wgtt-report show FILE\n"
      "       wgtt-report diff BASELINE CURRENT [--tolerance PCT] [--soft]\n"
      "                        [--budget-ms MS]\n"
      "       wgtt-report packets FILE [--limit N] [--switches]\n"
      "\n"
      "exit codes: 0 ok, 1 performance regression, 2 schema/usage error\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();

  if (args[0] == "show") {
    if (args.size() != 2) return usage();
    return cmd_show(args[1]);
  }
  if (args[0] == "packets") {
    std::size_t limit = 5;
    bool switches = false;
    std::string path;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--switches") {
        switches = true;
      } else if (args[i] == "--limit") {
        if (i + 1 >= args.size()) return usage();
        limit = static_cast<std::size_t>(std::atol(args[++i].c_str()));
      } else if (args[i].rfind("--limit=", 0) == 0) {
        limit = static_cast<std::size_t>(
            std::atol(args[i].c_str() + std::strlen("--limit=")));
      } else if (args[i].rfind("--", 0) == 0) {
        return usage();
      } else if (path.empty()) {
        path = args[i];
      } else {
        return usage();
      }
    }
    if (path.empty()) return usage();
    return cmd_packets(path, limit, switches);
  }
  if (args[0] == "diff") {
    DiffState st;
    std::vector<std::string> paths;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--soft") {
        st.soft = true;
      } else if (args[i] == "--tolerance") {
        if (i + 1 >= args.size()) return usage();
        st.tolerance_pct = std::atof(args[++i].c_str());
      } else if (args[i].rfind("--tolerance=", 0) == 0) {
        st.tolerance_pct = std::atof(args[i].c_str() + std::strlen("--tolerance="));
      } else if (args[i] == "--budget-ms") {
        if (i + 1 >= args.size()) return usage();
        st.budget_ms = std::atof(args[++i].c_str());
      } else if (args[i].rfind("--budget-ms=", 0) == 0) {
        st.budget_ms = std::atof(args[i].c_str() + std::strlen("--budget-ms="));
      } else if (args[i].rfind("--", 0) == 0) {
        return usage();
      } else {
        paths.push_back(args[i]);
      }
    }
    if (paths.size() != 2) return usage();
    return cmd_diff(paths[0], paths[1], st);
  }
  return usage();
}
