// wgtt-report: analyzer for the BENCH_*.json reports the sweep benches emit.
//
//   wgtt-report show FILE [--json]
//       Pretty-print one report: sweep header, per-run metrics table, the
//       fault-injection / controller-liveness counters (chaos sweeps only),
//       and the aggregated host-time profile (where simulator CPU went).
//       --json emits the same content as one machine-readable JSON object
//       on stdout instead of the human tables.
//
//   wgtt-report diff BASELINE CURRENT [--tolerance PCT] [--soft]
//                    [--budget-ms MS]
//       Compare two reports of the same bench.  Schema mismatches (different
//       bench id, run count, or run labels) always fail with exit 2.
//       Performance regressions — sweep wall time, per-run wall time, or an
//       aggregated profile section slower than baseline by more than the
//       tolerance (default 25 %) — fail with exit 1, or only warn when
//       --soft is given (CI runners are noisy; schema breaks are not).
//       --budget-ms MS adds a hard per-row wall-time budget: every run row
//       of CURRENT must finish within MS milliseconds.  Budget violations
//       fail with exit 1 even under --soft — the budget is an absolute
//       ceiling chosen with noise headroom, unlike the relative tolerance,
//       so exceeding it always means the hot path got slower.
//       Deterministic simulation outputs (goodput, switch counts) that drift
//       between same-seed reports are reported as warnings.
//
//   wgtt-report packets FILE [--limit N] [--switches]
//       Analyze a per-packet flight-recorder JSONL (the --packets output of
//       the benches): per-packet latency waterfalls, aggregate time-in-layer,
//       and a drop/duplicate autopsy table.  Chaos runs additionally get a
//       fault-window table: uid-0 fault_on/fault_off markers paired per
//       (node, kind, peer), each window credited with the fault_injected
//       drop records it caused.  With --switches, pairs the uid-0
//       switch_start/switch_done markers into switch windows — liveness
//       failovers are flagged reason=ap_suspect — and attributes every
//       packet whose lifecycle stalled across one.
//
//   wgtt-report critical-path FILE [--packets N] [--dot PATH]
//       Analyze a causal event-graph JSONL (the --causal output of the
//       benches): reconstruct the scheduler provenance DAG, extract the
//       critical path of every switch window (ctrl.switch_start to
//       ctrl.switch_done, matched per client+switch id), and print a
//       per-layer latency attribution whose segments sum *exactly* (the
//       simulated clock is integer nanoseconds) to the measured end-to-end
//       switch time — any mismatch exits 1.  Sampled packets with both
//       transport.send and transport.rx annotations get the same treatment:
//       the delivering event chain is walked backwards from the receive,
//       clamped at the send time, and the pre-chain remainder is charged to
//       queue_wait.  --dot PATH writes the union of the first few switch
//       critical paths as a Graphviz digraph.
//
//   wgtt-report decisions FILE
//       Summarize a controller decision-audit JSONL (the --decisions output
//       of the benches): record counts, per-outcome and per-reason tallies,
//       and the liveness event rollup.
//
//   wgtt-report health FILE [--strict] [--baseline FILE]
//                      [--emit-baseline FILE]
//       Analyze a runtime-health JSONL (the --health output of the benches):
//       the packet-conservation ledger, a per-series drift table
//       (least-squares slope per simulated hour over the trailing half of
//       the windows — a leak shows up as a stubbornly positive slope), the
//       watchdog violation rollup, and (schema-v2 fault-aware logs) the
//       convergence section: per-client outage windows, the longest outage,
//       and reconvergence time after the last fault cleared.  --strict
//       exits 1 on any error-severity violation or any outage still open at
//       the end of the run (an unconverged client).  --baseline compares
//       the ledger, the violation counts, and the drift slopes against a
//       committed baseline (exit 1 on mismatch); --emit-baseline writes
//       that baseline JSON.
//
// All JSONL inputs may carry a {"kind":"schema","stream":...,"version":...}
// header line; a recognized header is validated (wrong stream or a version
// newer than this tool understands exits 2), a missing header is accepted
// for backward compatibility.
//
// Exit codes: 0 ok / warnings only, 1 performance regression or health-gate
// failure, 2 schema or usage error.
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/fault_plan.h"
#include "util/json.h"

namespace {

using wgtt::JsonValue;

struct ProfileTotals {
  std::vector<std::pair<std::string, std::int64_t>> sections;  // sorted desc
  std::int64_t total_ns = 0;
};

// Sum each profile section's self_ns across all runs of a report.
ProfileTotals aggregate_profile(const JsonValue& report) {
  std::map<std::string, std::int64_t> acc;
  if (const JsonValue* runs = report.find("runs"); runs && runs->is_array()) {
    for (const JsonValue& run : runs->as_array()) {
      const JsonValue* profile = run.find("profile");
      if (!profile) continue;
      const JsonValue* sections = profile->find("sections");
      if (!sections || !sections->is_object()) continue;
      for (const auto& [name, sec] : sections->as_object()) {
        acc[name] += static_cast<std::int64_t>(sec.number_or("self_ns", 0.0));
      }
    }
  }
  ProfileTotals out;
  for (const auto& [name, ns] : acc) {
    out.sections.emplace_back(name, ns);
    out.total_ns += ns;
  }
  std::sort(out.sections.begin(), out.sections.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

bool load_report(const std::string& path, JsonValue& out) {
  std::string text;
  if (!wgtt::read_text_file(path, text)) {
    std::fprintf(stderr, "wgtt-report: cannot read %s\n", path.c_str());
    return false;
  }
  std::string error;
  if (!wgtt::json_parse(text, out, &error)) {
    std::fprintf(stderr, "wgtt-report: %s: JSON parse error: %s\n",
                 path.c_str(), error.c_str());
    return false;
  }
  if (!out.is_object() || !out.find("bench") || !out.find("runs") ||
      !out.find("runs")->is_array()) {
    std::fprintf(stderr,
                 "wgtt-report: %s: not a bench report (missing \"bench\" or "
                 "\"runs\")\n",
                 path.c_str());
    return false;
  }
  return true;
}

// Machine-readable mirror of cmd_show's human tables: one JSON object on
// stdout carrying the header fields, the per-run metric rows, the summed
// chaos counters, and the aggregated profile.  Scripts get a stable surface
// without scraping printf columns.
int cmd_show_json(const JsonValue& report) {
  wgtt::JsonWriter w;
  w.begin_object();
  w.field("bench", report.string_or("bench", "?"));
  w.field("title", report.string_or("title", ""));
  w.field("jobs", report.number_or("jobs", 0.0));
  w.field("wall_ms", report.number_or("wall_ms", 0.0));
  if (const JsonValue* summary = report.find("summary");
      summary && summary->is_object()) {
    w.key("summary").begin_object();
    for (const auto& [k, v] : summary->as_object()) {
      if (v.is_number()) w.field(k, v.as_number());
    }
    w.end_object();
  }
  w.key("runs").begin_array();
  std::map<std::string, double> chaos;
  for (const JsonValue& run : report.find("runs")->as_array()) {
    w.begin_object();
    w.field("label", run.string_or("label", "?"));
    w.field("policy", run.string_or("policy", ""));
    w.field("goodput_mbps", run.number_or("goodput_mbps", 0.0));
    w.field("udp_loss_rate", run.number_or("udp_loss_rate", 0.0));
    w.field("switching_accuracy", run.number_or("switching_accuracy", 0.0));
    w.field("switches", run.number_or("switches", 0.0));
    w.field("wall_ms", run.number_or("wall_ms", 0.0));
    w.end_object();
    if (const JsonValue* metrics = run.find("metrics")) {
      if (const JsonValue* counters = metrics->find("counters");
          counters && counters->is_object()) {
        for (const auto& [name, v] : counters->as_object()) {
          if (!v.is_number()) continue;
          if (name.rfind("fault.", 0) == 0 ||
              name.rfind("controller.liveness.", 0) == 0 ||
              name.rfind("controller.protocol.", 0) == 0) {
            chaos[name] += v.as_number();
          }
        }
      }
    }
  }
  w.end_array();
  if (!chaos.empty()) {
    w.key("chaos").begin_object();
    for (const auto& [name, v] : chaos) w.field(name, v);
    w.end_object();
  }
  const ProfileTotals profile = aggregate_profile(report);
  if (!profile.sections.empty()) {
    w.key("profile").begin_object();
    w.field("total_ns", profile.total_ns);
    w.key("sections").begin_object();
    for (const auto& [name, ns] : profile.sections) w.field(name, ns);
    w.end_object();
    w.end_object();
  }
  w.end_object();
  std::printf("%s\n", w.str().c_str());
  return 0;
}

int cmd_show(const std::string& path, bool json) {
  JsonValue report;
  if (!load_report(path, report)) return 2;
  if (json) return cmd_show_json(report);

  std::printf("bench:  %s\n", report.string_or("bench", "?").c_str());
  std::printf("title:  %s\n", report.string_or("title", "").c_str());
  std::printf("jobs:   %d    wall: %.1f ms\n",
              static_cast<int>(report.number_or("jobs", 0.0)),
              report.number_or("wall_ms", 0.0));
  if (const JsonValue* summary = report.find("summary");
      summary && summary->is_object() && !summary->as_object().empty()) {
    std::printf("summary:\n");
    for (const auto& [k, v] : summary->as_object()) {
      if (v.is_number()) std::printf("  %-32s %.4g\n", k.c_str(), v.as_number());
    }
  }

  const auto& runs = report.find("runs")->as_array();
  std::printf("\n%-28s %-22s %10s %8s %9s %9s %10s\n", "run", "policy",
              "goodput", "loss", "accuracy", "switches", "wall_ms");
  for (const JsonValue& run : runs) {
    std::printf("%-28s %-22s %10.2f %8.3f %9.3f %9d %10.1f\n",
                run.string_or("label", "?").c_str(),
                run.string_or("policy", "-").c_str(),
                run.number_or("goodput_mbps", 0.0),
                run.number_or("udp_loss_rate", 0.0),
                run.number_or("switching_accuracy", 0.0),
                static_cast<int>(run.number_or("switches", 0.0)),
                run.number_or("wall_ms", 0.0));
  }

  // Chaos sweeps carry fault.* and controller.liveness.* counters in each
  // run's metrics snapshot; sum them so one glance shows how much adversity
  // the sweep injected and how the controller coped.  Fault-free reports
  // have none and skip the section.
  std::map<std::string, double> chaos;
  for (const JsonValue& run : runs) {
    const JsonValue* metrics = run.find("metrics");
    if (!metrics) continue;
    const JsonValue* counters = metrics->find("counters");
    if (!counters || !counters->is_object()) continue;
    for (const auto& [name, v] : counters->as_object()) {
      if (!v.is_number()) continue;
      if (name.rfind("fault.", 0) == 0 ||
          name.rfind("controller.liveness.", 0) == 0 ||
          name.rfind("controller.protocol.", 0) == 0) {
        chaos[name] += v.as_number();
      }
    }
  }
  if (!chaos.empty()) {
    std::printf(
        "\nchaos (fault + liveness + protocol counters, summed over runs):\n");
    for (const auto& [name, v] : chaos) {
      std::printf("  %-36s %.0f\n", name.c_str(), v);
    }
  }

  const ProfileTotals profile = aggregate_profile(report);
  if (!profile.sections.empty()) {
    // Top-N by exclusive self-time: the tail sections are timer noise and
    // bury the hot ones in long reports.
    constexpr std::size_t kTopSections = 12;
    const std::size_t shown = std::min(profile.sections.size(), kTopSections);
    std::printf("\nprofile (host self-time, all runs, top %zu of %zu):\n",
                shown, profile.sections.size());
    std::printf("%-28s %12s %7s\n", "section", "self_ms", "share");
    std::int64_t shown_ns = 0;
    for (std::size_t i = 0; i < shown; ++i) {
      const auto& [name, ns] = profile.sections[i];
      shown_ns += ns;
      std::printf("%-28s %12.1f %6.1f%%\n", name.c_str(),
                  static_cast<double>(ns) / 1e6,
                  profile.total_ns > 0
                      ? 100.0 * static_cast<double>(ns) /
                            static_cast<double>(profile.total_ns)
                      : 0.0);
    }
    if (shown < profile.sections.size()) {
      const std::int64_t rest_ns = profile.total_ns - shown_ns;
      std::printf("%-28s %12.1f %6.1f%%\n",
                  ("+" + std::to_string(profile.sections.size() - shown) +
                   " more")
                      .c_str(),
                  static_cast<double>(rest_ns) / 1e6,
                  profile.total_ns > 0
                      ? 100.0 * static_cast<double>(rest_ns) /
                            static_cast<double>(profile.total_ns)
                      : 0.0);
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// packets: flight-recorder JSONL analysis
// ---------------------------------------------------------------------------

struct FlightRec {
  std::uint64_t uid = 0;
  double t_us = 0.0;
  std::string hop;
  std::int64_t node = 0;
  std::string cause;                              // empty when none
  std::vector<std::pair<std::string, std::int64_t>> extras;
};

// Map a hop name onto the simulator layer its latency is charged to.
const char* layer_of(const std::string& hop) {
  if (hop.rfind("transport_", 0) == 0) return "transport";
  if (hop.rfind("ctrl_", 0) == 0 || hop == "dedup_suppress") {
    return "controller";
  }
  if (hop.rfind("backhaul_", 0) == 0) return "backhaul";
  if (hop.rfind("ap_", 0) == 0) return "ap_queue";
  if (hop.rfind("mac_", 0) == 0) return "mac";
  if (hop.rfind("switch_", 0) == 0) return "switch";
  if (hop.rfind("fault_", 0) == 0) return "fault";
  return "?";
}

// Validate a {"kind":"schema"} JSONL header record.  Returns false (having
// printed the reason) when the stream name is wrong or the version is newer
// than `max_version` — the emitting simulator is ahead of this tool and the
// records cannot be trusted to mean what we think they mean.
bool check_schema_record(const JsonValue& v, const std::string& path,
                         const char* want_stream, int max_version) {
  const std::string stream = v.string_or("stream", "");
  const int version = static_cast<int>(v.number_or("version", 0.0));
  if (stream != want_stream) {
    std::fprintf(stderr,
                 "wgtt-report: %s: schema stream \"%s\" (expected \"%s\")\n",
                 path.c_str(), stream.c_str(), want_stream);
    return false;
  }
  if (version < 1 || version > max_version) {
    std::fprintf(stderr,
                 "wgtt-report: %s: schema version %d unsupported (this tool "
                 "understands \"%s\" up to version %d)\n",
                 path.c_str(), version, want_stream, max_version);
    return false;
  }
  return true;
}

bool load_packet_log(const std::string& path, std::vector<FlightRec>& out) {
  std::string text;
  if (!wgtt::read_text_file(path, text)) {
    std::fprintf(stderr, "wgtt-report: cannot read %s\n", path.c_str());
    return false;
  }
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string_view line(text.data() + pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    JsonValue v;
    std::string error;
    if (!wgtt::json_parse(line, v, &error) || !v.is_object()) {
      std::fprintf(stderr, "wgtt-report: %s:%zu: bad record: %s\n",
                   path.c_str(), line_no, error.c_str());
      return false;
    }
    if (v.string_or("kind", "") == "schema") {
      if (!check_schema_record(v, path, "wgtt.packets", 1)) return false;
      continue;
    }
    FlightRec rec;
    rec.uid = static_cast<std::uint64_t>(v.number_or("uid", 0.0));
    rec.t_us = v.number_or("t_us", 0.0);
    rec.hop = v.string_or("hop", "?");
    rec.node = static_cast<std::int64_t>(v.number_or("node", 0.0));
    rec.cause = v.string_or("cause", "");
    for (const auto& [k, val] : v.as_object()) {
      if (k == "uid" || k == "t_us" || k == "hop" || k == "node" ||
          k == "cause" || !val.is_number()) {
        continue;
      }
      rec.extras.emplace_back(k, static_cast<std::int64_t>(val.as_number()));
    }
    out.push_back(std::move(rec));
  }
  return true;
}

struct SwitchWindow {
  double start_us = 0.0;
  double done_us = 0.0;
  std::int64_t client = -1;
  std::int64_t from = -1;
  std::int64_t to = -1;
  std::int64_t gap_us = 0;
  bool failover = false;  // liveness-driven (reason=ap_suspect) switch
  std::size_t stalled_packets = 0;
  double max_stall_us = 0.0;
};

struct FaultWindow {
  double on_us = 0.0;
  double off_us = -1.0;  // < 0: never cleared before the log ended
  std::int64_t node = -1;
  std::int64_t kind = -1;
  std::int64_t peer = 0;
  std::size_t drops = 0;  // fault_injected drop records inside the window
};

const char* fault_kind_name(std::int64_t kind) {
  using wgtt::sim::FaultKind;
  if (kind < 0 || kind > static_cast<std::int64_t>(FaultKind::kCsiGarbage)) {
    return "?";
  }
  return wgtt::sim::to_string(static_cast<FaultKind>(kind));
}

std::int64_t extra_or(const FlightRec& r, const char* key,
                      std::int64_t fallback) {
  for (const auto& [k, v] : r.extras) {
    if (k == key) return v;
  }
  return fallback;
}

int cmd_packets(const std::string& path, std::size_t waterfall_limit,
                bool switches) {
  std::vector<FlightRec> recs;
  if (!load_packet_log(path, recs)) return 2;

  // Group per packet.  Records were appended in simulated-time order, so
  // each per-uid vector is already a time-ordered waterfall.
  std::map<std::uint64_t, std::vector<const FlightRec*>> packets;
  std::vector<const FlightRec*> markers;
  for (const FlightRec& r : recs) {
    if (r.uid == 0) {
      markers.push_back(&r);
    } else {
      packets[r.uid].push_back(&r);
    }
  }

  std::printf("packet log: %s\n", path.c_str());
  std::printf("records: %zu   packets: %zu   markers: %zu\n", recs.size(),
              packets.size(), markers.size());

  // --- aggregate time-in-layer -------------------------------------------
  // Each inter-record delta is charged to the layer of the *later* record:
  // the time it took the packet to reach that hop.
  std::map<std::string, std::pair<double, std::size_t>> layer_us;
  std::size_t drops = 0, dups = 0;
  for (const auto& [uid, hops] : packets) {
    for (std::size_t i = 0; i < hops.size(); ++i) {
      if (!hops[i]->cause.empty()) {
        hops[i]->cause == "duplicate" ? ++dups : ++drops;
      }
      if (i == 0) continue;
      auto& [us, n] = layer_us[layer_of(hops[i]->hop)];
      us += hops[i]->t_us - hops[i - 1]->t_us;
      ++n;
    }
  }
  if (!layer_us.empty()) {
    double total_us = 0.0;
    for (const auto& [layer, acc] : layer_us) total_us += acc.first;
    std::printf("\ntime in layer (inter-hop latency charged to the arriving "
                "layer):\n");
    std::printf("%-12s %14s %8s %10s\n", "layer", "total_ms", "share",
                "hops");
    for (const auto& [layer, acc] : layer_us) {
      std::printf("%-12s %14.3f %7.1f%% %10zu\n", layer.c_str(),
                  acc.first / 1e3,
                  total_us > 0 ? 100.0 * acc.first / total_us : 0.0,
                  acc.second);
    }
  }

  // --- per-packet latency waterfalls -------------------------------------
  std::size_t shown = 0;
  for (const auto& [uid, hops] : packets) {
    if (shown >= waterfall_limit) break;
    ++shown;
    std::printf("\npacket uid %" PRIu64 " (%zu hops, %.3f ms end-to-end):\n",
                uid, hops.size(),
                (hops.back()->t_us - hops.front()->t_us) / 1e3);
    std::printf("  %12s %10s %-16s %5s  %s\n", "t_us", "dt_us", "hop", "node",
                "detail");
    double prev = hops.front()->t_us;
    for (const FlightRec* r : hops) {
      std::string detail;
      for (const auto& [k, v] : r->extras) {
        if (!detail.empty()) detail += " ";
        detail += k + "=" + std::to_string(v);
      }
      if (!r->cause.empty()) {
        if (!detail.empty()) detail += " ";
        detail += "cause=" + r->cause;
      }
      std::printf("  %12.3f %10.3f %-16s %5" PRId64 "  %s\n", r->t_us,
                  r->t_us - prev, r->hop.c_str(), r->node, detail.c_str());
      prev = r->t_us;
    }
  }
  if (shown < packets.size()) {
    std::printf("\n(%zu more packets; raise --limit to print them)\n",
                packets.size() - shown);
  }

  // --- drop / duplicate autopsy ------------------------------------------
  std::printf("\nautopsy: %zu drop record(s), %zu duplicate record(s)\n",
              drops, dups);
  if (drops + dups > 0) {
    constexpr std::size_t kMaxAutopsyRows = 200;
    std::printf("%-10s %12s %-10s %-16s %5s  %s\n", "uid", "t_us", "layer",
                "hop", "node", "cause");
    std::size_t rows = 0;
    for (const FlightRec& r : recs) {
      if (r.uid == 0 || r.cause.empty()) continue;
      if (rows++ >= kMaxAutopsyRows) continue;
      std::printf("%-10" PRIu64 " %12.3f %-10s %-16s %5" PRId64 "  %s\n",
                  r.uid, r.t_us, layer_of(r.hop), r.hop.c_str(), r.node,
                  r.cause.c_str());
    }
    if (rows > kMaxAutopsyRows) {
      std::printf("(+%zu more autopsy rows)\n", rows - kMaxAutopsyRows);
    }
  }

  // --- fault windows -----------------------------------------------------
  // Chaos runs emit uid-0 fault_on/fault_off markers.  Pair them per
  // (node, kind, peer) and credit each window with the fault_injected drop
  // records landing inside it; fault-free logs skip the section entirely.
  std::vector<FaultWindow> faults;
  for (const FlightRec* m : markers) {
    if (m->hop == "fault_on") {
      FaultWindow w;
      w.on_us = m->t_us;
      w.node = m->node;
      w.kind = extra_or(*m, "kind", -1);
      w.peer = extra_or(*m, "peer", 0);
      faults.push_back(w);
    } else if (m->hop == "fault_off") {
      const std::int64_t kind = extra_or(*m, "kind", -1);
      const std::int64_t peer = extra_or(*m, "peer", 0);
      // Close the most recent still-open window of the same identity; the
      // injector never overlaps identical windows, so this is unambiguous.
      for (auto it = faults.rbegin(); it != faults.rend(); ++it) {
        if (it->off_us < 0.0 && it->node == m->node && it->kind == kind &&
            it->peer == peer) {
          it->off_us = m->t_us;
          break;
        }
      }
    }
  }
  if (!faults.empty()) {
    std::size_t fault_drops = 0;
    for (const FlightRec& r : recs) {
      if (r.uid == 0 || r.cause != "fault_injected") continue;
      ++fault_drops;
      for (FaultWindow& w : faults) {
        if (r.t_us >= w.on_us && (w.off_us < 0.0 || r.t_us < w.off_us)) {
          ++w.drops;  // earliest covering window claims the drop
          break;
        }
      }
    }
    std::printf("\nfault windows: %zu (%zu fault_injected drop record(s)):\n",
                faults.size(), fault_drops);
    std::printf("%12s %12s %-14s %5s %5s %7s\n", "on_us", "off_us", "kind",
                "node", "peer", "drops");
    for (const FaultWindow& w : faults) {
      char off[32];
      if (w.off_us < 0.0) {
        std::snprintf(off, sizeof(off), "%12s", "open");
      } else {
        std::snprintf(off, sizeof(off), "%12.3f", w.off_us);
      }
      std::printf("%12.3f %s %-14s %5" PRId64 " %5" PRId64 " %7zu\n", w.on_us,
                  off, fault_kind_name(w.kind), w.node, w.peer, w.drops);
    }
  }

  // --- switch-gap attribution --------------------------------------------
  if (switches) {
    std::vector<SwitchWindow> windows;
    std::map<std::int64_t, SwitchWindow> open;  // per client
    for (const FlightRec* m : markers) {
      const std::int64_t client = extra_or(*m, "client", -1);
      if (m->hop == "switch_start") {
        SwitchWindow w;
        w.start_us = m->t_us;
        w.client = client;
        w.from = extra_or(*m, "from", -1);
        w.to = extra_or(*m, "to", -1);
        w.failover = extra_or(*m, "failover", 0) != 0;
        open[client] = w;
      } else if (m->hop == "switch_done") {
        auto it = open.find(client);
        if (it == open.end()) continue;
        SwitchWindow w = it->second;
        open.erase(it);
        w.done_us = m->t_us;
        w.gap_us = extra_or(*m, "gap_us", 0);
        windows.push_back(w);
      }
    }
    // A packet "stalled across" a switch when the gap between two of its
    // consecutive records overlaps the switch window.
    for (SwitchWindow& w : windows) {
      for (const auto& [uid, hops] : packets) {
        double worst = 0.0;
        for (std::size_t i = 1; i < hops.size(); ++i) {
          const double lo = hops[i - 1]->t_us;
          const double hi = hops[i]->t_us;
          if (lo < w.done_us && hi > w.start_us) {
            worst = std::max(worst, hi - lo);
          }
        }
        if (worst > 0.0) {
          ++w.stalled_packets;
          w.max_stall_us = std::max(w.max_stall_us, worst);
        }
      }
    }
    std::printf("\nswitches: %zu completed window(s)%s\n", windows.size(),
                open.empty() ? "" : " (+unfinished)");
    if (!windows.empty()) {
      std::printf("%12s %12s %7s %5s %4s %4s %-10s %9s %13s\n", "start_us",
                  "done_us", "gap_us", "client", "from", "to", "reason",
                  "stalled", "max_stall_us");
      for (const SwitchWindow& w : windows) {
        std::printf("%12.3f %12.3f %7" PRId64 " %5" PRId64 " %4" PRId64
                    " %4" PRId64 " %-10s %9zu %13.3f\n",
                    w.start_us, w.done_us, w.gap_us, w.client, w.from, w.to,
                    w.failover ? "ap_suspect" : "esnr", w.stalled_packets,
                    w.max_stall_us);
      }
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// health: runtime-health JSONL analysis and drift gate
// ---------------------------------------------------------------------------

struct HealthLog {
  std::vector<double> t_hours;  // window close times
  // Per-series window samples, aligned with t_hours: the ledger's in_flight
  // plus every gauge the run registered.
  std::map<std::string, std::vector<double>> series;
  // watchdog -> (severity, count); a watchdog that fired with both
  // severities keeps the worse one.
  std::map<std::string, std::pair<std::string, std::uint64_t>> watchdogs;
  // From the summary record (or accumulated if the log was truncated).
  std::uint64_t windows = 0, checks = 0, violations = 0, errors = 0;
  double sent = 0, copies = 0, delivered = 0, retired = 0, dropped = 0;
  double in_flight = 0;
  bool has_summary = false;
  // Schema-v2 (fault-aware) records: client outage windows and fault edges.
  struct Outage {
    std::int64_t client = 0;
    double begin_us = 0.0, end_us = 0.0;
    bool open = false;
  };
  struct FaultMark {
    double t_us = 0.0;
    std::string fault;
    std::int64_t node = 0;
    bool active = false;
  };
  std::vector<Outage> outages;
  std::vector<FaultMark> faults;
};

bool load_health_log(const std::string& path, HealthLog& out) {
  std::string text;
  if (!wgtt::read_text_file(path, text)) {
    std::fprintf(stderr, "wgtt-report: cannot read %s\n", path.c_str());
    return false;
  }
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string_view line(text.data() + pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    JsonValue v;
    std::string error;
    if (!wgtt::json_parse(line, v, &error) || !v.is_object()) {
      std::fprintf(stderr, "wgtt-report: %s:%zu: bad record: %s\n",
                   path.c_str(), line_no, error.c_str());
      return false;
    }
    const std::string kind = v.string_or("kind", "");
    if (kind == "schema") {
      if (!check_schema_record(v, path, "wgtt.health", 2)) return false;
    } else if (kind == "outage") {
      HealthLog::Outage o;
      o.client = static_cast<std::int64_t>(v.number_or("client", 0.0));
      o.begin_us = v.number_or("begin_us", 0.0);
      o.end_us = v.number_or("end_us", 0.0);
      if (const JsonValue* b = v.find("open"); b && b->is_bool()) {
        o.open = b->as_bool();
      }
      out.outages.push_back(std::move(o));
    } else if (kind == "fault") {
      HealthLog::FaultMark f;
      f.t_us = v.number_or("t_us", 0.0);
      f.fault = v.string_or("fault", "?");
      f.node = static_cast<std::int64_t>(v.number_or("node", 0.0));
      if (const JsonValue* b = v.find("active"); b && b->is_bool()) {
        f.active = b->as_bool();
      }
      out.faults.push_back(std::move(f));
    } else if (kind == "window") {
      out.t_hours.push_back(v.number_or("t_us", 0.0) / 3.6e9);
      out.series["in_flight"].push_back(v.number_or("in_flight", 0.0));
      if (const JsonValue* g = v.find("gauges"); g && g->is_object()) {
        for (const auto& [name, val] : g->as_object()) {
          if (!val.is_number()) continue;
          auto& s = out.series[name];
          // Gauges registered mid-run backfill with their first sample so
          // every aligned series has t_hours.size() points.
          while (s.size() + 1 < out.t_hours.size()) s.push_back(val.as_number());
          s.push_back(val.as_number());
        }
      }
      ++out.windows;
    } else if (kind == "violation") {
      const std::string watchdog = v.string_or("watchdog", "?");
      const std::string severity = v.string_or("severity", "warn");
      auto& [worst, count] = out.watchdogs[watchdog];
      if (worst.empty() || severity == "error") worst = severity;
      ++count;
      ++out.violations;
      if (severity == "error") ++out.errors;
    } else if (kind == "summary") {
      out.has_summary = true;
      out.windows = static_cast<std::uint64_t>(v.number_or("windows", 0.0));
      out.checks = static_cast<std::uint64_t>(v.number_or("checks", 0.0));
      out.violations =
          static_cast<std::uint64_t>(v.number_or("violations", 0.0));
      out.sent = v.number_or("sent", 0.0);
      out.copies = v.number_or("copies", 0.0);
      out.delivered = v.number_or("delivered", 0.0);
      out.retired = v.number_or("retired", 0.0);
      out.dropped = v.number_or("dropped", 0.0);
      out.in_flight = v.number_or("in_flight", 0.0);
    }
  }
  if (out.t_hours.empty()) {
    std::fprintf(stderr, "wgtt-report: %s: no window records\n", path.c_str());
    return false;
  }
  return true;
}

// Least-squares slope (units per simulated hour) over the trailing half of
// the samples: the leading half is queue-fill warmup, and a leak is a slope
// that stays positive after the system should have plateaued.
double trailing_slope(const std::vector<double>& t, const std::vector<double>& y) {
  const std::size_t n = t.size();
  const std::size_t lo = n / 2;
  const std::size_t m = n - lo;
  if (m < 2) return 0.0;
  double st = 0, sy = 0, stt = 0, sty = 0;
  for (std::size_t i = lo; i < n; ++i) {
    st += t[i];
    sy += y[i];
    stt += t[i] * t[i];
    sty += t[i] * y[i];
  }
  const double denom = m * stt - st * st;
  if (std::fabs(denom) < 1e-12) return 0.0;
  return (m * sty - st * sy) / denom;
}

int cmd_health(const std::string& path, bool strict,
               const std::string& baseline_path,
               const std::string& emit_baseline_path) {
  HealthLog log;
  if (!load_health_log(path, log)) return 2;

  std::printf("health log: %s\n", path.c_str());
  std::printf("windows: %" PRIu64 "   checks: %" PRIu64
              "   violations: %" PRIu64 " (%" PRIu64 " error)\n",
              log.windows, log.checks, log.violations, log.errors);
  std::printf("ledger:  sent %.0f  copies %.0f  delivered %.0f  retired %.0f"
              "  dropped %.0f  in_flight %.0f\n",
              log.sent, log.copies, log.delivered, log.retired, log.dropped,
              log.in_flight);

  // --- drift table --------------------------------------------------------
  std::map<std::string, double> slopes;
  std::printf("\ndrift (slope per simulated hour, trailing half of %" PRIu64
              " windows):\n", log.windows);
  std::printf("%-24s %14s %14s  %s\n", "series", "final", "slope/hr",
              "trend");
  for (const auto& [name, samples] : log.series) {
    if (samples.size() != log.t_hours.size()) continue;  // never backfilled
    const double slope = trailing_slope(log.t_hours, samples);
    slopes[name] = slope;
    const double final_v = samples.back();
    // Purely informational: a series drifting faster than 25 % of its final
    // level per hour has not plateaued.  The gating comparison is against
    // the committed baseline below.
    const double scale = std::max(std::fabs(final_v), 1.0);
    const char* trend = std::fabs(slope) <= 0.25 * scale ? "flat" : "DRIFT";
    std::printf("%-24s %14.1f %14.1f  %s\n", name.c_str(), final_v, slope,
                trend);
  }

  // --- watchdog rollup ----------------------------------------------------
  if (log.watchdogs.empty()) {
    std::printf("\nwatchdogs: all green\n");
  } else {
    std::printf("\nwatchdog violations:\n");
    std::printf("%-24s %-8s %10s\n", "watchdog", "severity", "count");
    for (const auto& [name, sc] : log.watchdogs) {
      std::printf("%-24s %-8s %10" PRIu64 "\n", name.c_str(),
                  sc.first.c_str(), sc.second);
    }
  }

  // --- convergence (schema-v2 fault-aware logs only) ----------------------
  std::size_t open_outages = 0;
  if (!log.outages.empty() || !log.faults.empty()) {
    double last_clear_us = 0.0;
    for (const auto& f : log.faults) {
      if (!f.active) last_clear_us = std::max(last_clear_us, f.t_us);
    }
    double longest_us = 0.0;
    double last_end_us = 0.0;
    for (const auto& o : log.outages) {
      if (o.open) ++open_outages;
      longest_us = std::max(longest_us, o.end_us - o.begin_us);
      last_end_us = std::max(last_end_us, o.end_us);
    }
    std::printf("\nconvergence: %zu outage window(s), %zu still open\n",
                log.outages.size(), open_outages);
    if (!log.outages.empty()) {
      std::printf("%8s %14s %14s %12s %6s\n", "client", "begin_us", "end_us",
                  "length_ms", "open");
      for (const auto& o : log.outages) {
        std::printf("%8" PRId64 " %14.3f %14.3f %12.3f %6s\n", o.client,
                    o.begin_us, o.end_us, (o.end_us - o.begin_us) / 1e3,
                    o.open ? "OPEN" : "no");
      }
      std::printf("longest outage: %.3f ms\n", longest_us / 1e3);
    }
    if (last_clear_us > 0.0) {
      // Reconvergence: how long after the last fault cleared the last client
      // recovered.  Negative means every outage closed before the clear.
      std::printf("last fault clear: %.3f us", last_clear_us);
      if (!log.outages.empty()) {
        std::printf("   reconvergence: %.3f ms after clear",
                    (last_end_us - last_clear_us) / 1e3);
      }
      std::printf("\n");
    }
  }

  // --- baseline emit / compare -------------------------------------------
  if (!emit_baseline_path.empty()) {
    wgtt::JsonWriter w;
    w.begin_object();
    w.field("stream", "wgtt.health");
    w.field("windows", log.windows);
    w.field("checks", log.checks);
    w.field("violations", log.violations);
    w.field("errors", log.errors);
    w.key("ledger").begin_object();
    w.field("sent", log.sent);
    w.field("copies", log.copies);
    w.field("delivered", log.delivered);
    w.field("retired", log.retired);
    w.field("dropped", log.dropped);
    w.field("in_flight", log.in_flight);
    w.end_object();
    w.key("slopes").begin_object();
    for (const auto& [name, slope] : slopes) w.field(name, slope);
    w.end_object();
    w.end_object();
    if (!wgtt::write_text_file(emit_baseline_path, w.str() + "\n")) {
      std::fprintf(stderr, "wgtt-report: cannot write %s\n",
                   emit_baseline_path.c_str());
      return 2;
    }
    std::printf("\nbaseline written: %s\n", emit_baseline_path.c_str());
  }

  int gate_failures = 0;
  if (!baseline_path.empty()) {
    std::string text;
    JsonValue base;
    std::string error;
    if (!wgtt::read_text_file(baseline_path, text) ||
        !wgtt::json_parse(text, base, &error) || !base.is_object()) {
      std::fprintf(stderr, "wgtt-report: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::printf("\nbaseline: %s\n", baseline_path.c_str());
    const auto check_exact = [&](const char* what, double want, double got) {
      if (want == got) return;
      std::printf("FAIL  %-24s %.0f (baseline %.0f)\n", what, got, want);
      ++gate_failures;
    };
    check_exact("windows", base.number_or("windows", 0.0),
                static_cast<double>(log.windows));
    check_exact("checks", base.number_or("checks", 0.0),
                static_cast<double>(log.checks));
    check_exact("violations", base.number_or("violations", 0.0),
                static_cast<double>(log.violations));
    check_exact("errors", base.number_or("errors", 0.0),
                static_cast<double>(log.errors));
    if (const JsonValue* ledger = base.find("ledger");
        ledger && ledger->is_object()) {
      check_exact("ledger.sent", ledger->number_or("sent", 0.0), log.sent);
      check_exact("ledger.copies", ledger->number_or("copies", 0.0),
                  log.copies);
      check_exact("ledger.delivered", ledger->number_or("delivered", 0.0),
                  log.delivered);
      check_exact("ledger.retired", ledger->number_or("retired", 0.0),
                  log.retired);
      check_exact("ledger.dropped", ledger->number_or("dropped", 0.0),
                  log.dropped);
      check_exact("ledger.in_flight", ledger->number_or("in_flight", 0.0),
                  log.in_flight);
    }
    if (const JsonValue* bs = base.find("slopes"); bs && bs->is_object()) {
      for (const auto& [name, want] : bs->as_object()) {
        if (!want.is_number()) continue;
        auto it = slopes.find(name);
        if (it == slopes.end()) {
          std::printf("FAIL  slope %-18s missing from log\n", name.c_str());
          ++gate_failures;
          continue;
        }
        // The runs are deterministic, so slopes reproduce bit-for-bit on
        // one toolchain; 1 % relative headroom absorbs cross-compiler FP.
        const double w = want.as_number();
        const double tol = std::max(0.01 * std::fabs(w), 1e-9);
        if (std::fabs(it->second - w) > tol) {
          std::printf("FAIL  slope %-18s %.3f (baseline %.3f)\n", name.c_str(),
                      it->second, w);
          ++gate_failures;
        }
      }
    }
    if (gate_failures == 0) std::printf("baseline: ok\n");
  }

  if (gate_failures > 0) {
    std::printf("result: %d baseline mismatch(es)\n", gate_failures);
    return 1;
  }
  if (strict && log.errors > 0) {
    std::printf("result: STRICT FAIL — %" PRIu64
                " error-severity violation(s)\n", log.errors);
    return 1;
  }
  if (strict && open_outages > 0) {
    std::printf("result: STRICT FAIL — %zu client(s) never reconverged "
                "(outage window still open at end of run)\n", open_outages);
    return 1;
  }
  std::printf("result: ok\n");
  return 0;
}

// ---------------------------------------------------------------------------
// critical-path: causal event-graph analysis
// ---------------------------------------------------------------------------

// The causal JSONL carries two record shapes (util/causal.h):
//   edge        {"ev":N,"parent":P,"at_us":T}   scheduled-at provenance
//   annotation  {"ev":N,"site":"...","t_us":T, ...int args}
// Times are microsecond strings with 3 decimals rendered from the integer-ns
// simulated clock, so converting back via llround(us * 1000) is exact.
struct CausalEvent {
  std::uint64_t parent = 0;
  std::int64_t at_ns = 0;  // execution time (schedule target == dispatch time)
  std::int32_t site = -1;  // first annotation site, index into CausalGraph
};

struct CausalAnnotation {
  std::uint64_t ev = 0;
  std::int64_t t_ns = 0;
  std::int32_t site = -1;
  std::vector<std::pair<std::string, std::int64_t>> args;
};

struct CausalGraph {
  std::unordered_map<std::uint64_t, CausalEvent> events;
  std::vector<std::string> sites;  // interned site names
  std::vector<CausalAnnotation> annotations;

  const char* site_name(std::int32_t idx) const {
    return idx < 0 ? "sched" : sites[static_cast<std::size_t>(idx)].c_str();
  }
};

std::int64_t parse_us_ns(const JsonValue& v, const char* key) {
  return static_cast<std::int64_t>(std::llround(v.number_or(key, 0.0) * 1e3));
}

bool load_causal_log(const std::string& path, CausalGraph& g) {
  std::string text;
  if (!wgtt::read_text_file(path, text)) {
    std::fprintf(stderr, "wgtt-report: cannot read %s\n", path.c_str());
    return false;
  }
  std::map<std::string, std::int32_t> interned;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string_view line(text.data() + pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    JsonValue v;
    std::string error;
    if (!wgtt::json_parse(line, v, &error) || !v.is_object()) {
      std::fprintf(stderr, "wgtt-report: %s:%zu: bad record: %s\n",
                   path.c_str(), line_no, error.c_str());
      return false;
    }
    if (v.string_or("kind", "") == "schema") {
      if (!check_schema_record(v, path, "wgtt.causal", 1)) return false;
      continue;
    }
    const std::uint64_t ev =
        static_cast<std::uint64_t>(v.number_or("ev", 0.0));
    if (const JsonValue* site = v.find("site")) {
      CausalAnnotation a;
      a.ev = ev;
      a.t_ns = parse_us_ns(v, "t_us");
      const std::string name = site->is_string() ? site->as_string() : "?";
      auto [it, inserted] =
          interned.try_emplace(name, static_cast<std::int32_t>(g.sites.size()));
      if (inserted) g.sites.push_back(name);
      a.site = it->second;
      for (const auto& [k, val] : v.as_object()) {
        if (k == "ev" || k == "site" || k == "t_us" || !val.is_number()) {
          continue;
        }
        a.args.emplace_back(k, static_cast<std::int64_t>(val.as_number()));
      }
      // First annotation of a dispatching event labels its critical-path
      // segment (later annotations of the same event ran inline after it).
      CausalEvent& e = g.events[ev];
      if (e.site < 0) e.site = a.site;
      g.annotations.push_back(std::move(a));
    } else {
      CausalEvent& e = g.events[ev];
      e.parent = static_cast<std::uint64_t>(v.number_or("parent", 0.0));
      e.at_ns = parse_us_ns(v, "at_us");
    }
  }
  return true;
}

std::int64_t causal_arg(const CausalAnnotation& a, const char* key,
                        std::int64_t fallback) {
  for (const auto& [k, v] : a.args) {
    if (k == key) return v;
  }
  return fallback;
}

// Map an annotation site onto the layer its critical-path segment is charged
// to.  The segment (parent -> child) is labeled by the *child* event's site:
// the child is the work the parent caused, so its duration belongs to the
// layer that scheduled it.
const char* layer_of_site(const std::string& site) {
  if (site == "ap.ioctl") return "driver";
  if (site == "ap.stop" || site == "ap.start" || site == "ap.activate") {
    return "ap_ctrl";
  }
  if (site.rfind("ap.", 0) == 0) return "ap_queue";
  if (site.rfind("ctrl.", 0) == 0) return "controller";
  if (site.rfind("backhaul.", 0) == 0) return "backhaul";
  if (site.rfind("mac.", 0) == 0) return "mac";
  if (site.rfind("transport.", 0) == 0) return "transport";
  return "sched";
}

struct CausalSwitch {
  std::uint64_t start_ev = 0;
  std::uint64_t done_ev = 0;
  std::int64_t t_start_ns = 0;
  std::int64_t t_done_ns = 0;
  std::int64_t client = -1;
  std::int64_t from = -1;
  std::int64_t to = -1;
  std::int64_t retx = 0;
  bool failover = false;
  std::vector<std::uint64_t> chain;  // done_ev back to (excluding) start_ev
  bool complete = false;             // parent walk reached start_ev
  bool exact = false;                // segments sum to t_done - t_start
};

int cmd_critical_path(const std::string& path, std::size_t packet_limit,
                      const std::string& dot_path) {
  CausalGraph g;
  if (!load_causal_log(path, g)) return 2;

  std::size_t edge_count = g.events.size();
  std::printf("causal log: %s\n", path.c_str());
  std::printf("events: %zu   annotations: %zu   sites: %zu\n", edge_count,
              g.annotations.size(), g.sites.size());

  // --- pair switch windows per (client, switch id) -------------------------
  std::vector<CausalSwitch> switches;
  std::map<std::pair<std::int64_t, std::int64_t>, std::size_t> open;
  for (const CausalAnnotation& a : g.annotations) {
    const std::string& site = g.sites[static_cast<std::size_t>(a.site)];
    if (site == "ctrl.switch_start") {
      CausalSwitch s;
      s.start_ev = a.ev;
      s.t_start_ns = a.t_ns;
      s.client = causal_arg(a, "client", -1);
      s.from = causal_arg(a, "from", -1);
      s.to = causal_arg(a, "to", -1);
      s.failover = causal_arg(a, "failover", 0) != 0;
      open[{s.client, causal_arg(a, "switch", -1)}] = switches.size();
      switches.push_back(s);
    } else if (site == "ctrl.switch_done") {
      auto it = open.find({causal_arg(a, "client", -1),
                           causal_arg(a, "switch", -1)});
      if (it == open.end()) continue;
      CausalSwitch& s = switches[it->second];
      s.done_ev = a.ev;
      s.t_done_ns = a.t_ns;
      s.retx = causal_arg(a, "retx", 0);
      s.complete = true;
      open.erase(it);
    }
  }

  // --- walk each window's provenance chain and telescope the segments -----
  // Every event executes at the time it was scheduled for (at_ns), and
  // ctrl.switch_done runs inline inside the ack-delivery event, so the chain
  //   start_ev -> ... -> done_ev
  // telescopes: sum(at(child) - at(parent)) == t_done - t_start exactly.
  std::map<std::string, std::pair<std::int64_t, std::size_t>> layer_ns;
  std::size_t walked = 0, exact = 0;
  for (CausalSwitch& s : switches) {
    if (!s.complete) continue;
    std::uint64_t cur = s.done_ev;
    bool ok = true;
    while (cur != s.start_ev) {
      s.chain.push_back(cur);
      auto it = g.events.find(cur);
      if (it == g.events.end() || it->second.parent == 0 ||
          s.chain.size() > 1u << 20) {
        ok = false;
        break;
      }
      cur = it->second.parent;
    }
    if (!ok) {
      s.chain.clear();
      continue;
    }
    ++walked;
    std::int64_t sum = 0;
    std::int64_t prev = s.t_start_ns;
    for (auto it = s.chain.rbegin(); it != s.chain.rend(); ++it) {
      const CausalEvent& e = g.events[*it];
      const std::int64_t seg = e.at_ns - prev;
      sum += seg;
      auto& [ns, n] = layer_ns[layer_of_site(g.site_name(e.site))];
      ns += seg;
      ++n;
      prev = e.at_ns;
    }
    s.exact = sum == s.t_done_ns - s.t_start_ns;
    if (s.exact) ++exact;
  }

  std::printf("\nswitch windows: %zu complete (of %zu started), "
              "%zu walked, %zu exact\n",
              static_cast<std::size_t>(
                  std::count_if(switches.begin(), switches.end(),
                                [](const CausalSwitch& s) {
                                  return s.complete;
                                })),
              switches.size(), walked, exact);
  if (walked > 0) {
    std::printf("%12s %10s %6s %4s %4s %5s %4s %-9s %6s %s\n", "start_us",
                "e2e_ms", "client", "from", "to", "hops", "retx", "reason",
                "exact", "");
    constexpr std::size_t kMaxRows = 40;
    std::size_t rows = 0;
    for (const CausalSwitch& s : switches) {
      if (s.chain.empty()) continue;
      if (rows++ >= kMaxRows) continue;
      std::printf("%12.3f %10.3f %6" PRId64 " %4" PRId64 " %4" PRId64
                  " %5zu %4" PRId64 " %-9s %6s\n",
                  static_cast<double>(s.t_start_ns) / 1e3,
                  static_cast<double>(s.t_done_ns - s.t_start_ns) / 1e6,
                  s.client, s.from, s.to, s.chain.size(), s.retx,
                  s.failover ? "failover" : "esnr", s.exact ? "yes" : "NO");
    }
    if (rows > kMaxRows) {
      std::printf("(+%zu more switch windows)\n", rows - kMaxRows);
    }

    std::int64_t total_ns = 0;
    for (const auto& [layer, acc] : layer_ns) total_ns += acc.first;
    std::printf("\nswitch latency attribution (segment labeled by the layer "
                "that scheduled it):\n");
    std::printf("%-12s %14s %8s %10s\n", "layer", "total_ms", "share",
                "segments");
    for (const auto& [layer, acc] : layer_ns) {
      std::printf("%-12s %14.3f %7.1f%% %10zu\n", layer.c_str(),
                  static_cast<double>(acc.first) / 1e6,
                  total_ns > 0 ? 100.0 * static_cast<double>(acc.first) /
                                     static_cast<double>(total_ns)
                               : 0.0,
                  acc.second);
    }
  }

  // --- sampled-packet attribution -----------------------------------------
  // A packet's receive runs inside the delivering chain's event (a MAC
  // exchange completion, an ack delivery...), which was NOT scheduled by the
  // packet's own send — so the backwards walk ascends the deliverer's
  // provenance and is clamped at the send time: everything earlier is time
  // the packet waited for that chain to reach it, charged to queue_wait.
  std::map<std::uint64_t, const CausalAnnotation*> sends, rxs;
  for (const CausalAnnotation& a : g.annotations) {
    const std::string& site = g.sites[static_cast<std::size_t>(a.site)];
    const std::int64_t uid = causal_arg(a, "uid", -1);
    if (uid <= 0) continue;
    if (site == "transport.send") {
      sends.try_emplace(static_cast<std::uint64_t>(uid), &a);
    } else if (site == "transport.rx") {
      rxs.try_emplace(static_cast<std::uint64_t>(uid), &a);
    }
  }
  std::map<std::string, std::pair<std::int64_t, std::size_t>> pkt_layer_ns;
  std::size_t pkt_walked = 0, pkt_exact = 0;
  std::int64_t pkt_e2e_ns = 0;
  struct PacketRow {
    std::uint64_t uid;
    std::int64_t e2e_ns;
    std::int64_t wait_ns;
    std::size_t hops;
  };
  std::vector<PacketRow> rows;
  for (const auto& [uid, rx] : rxs) {
    auto sit = sends.find(uid);
    if (sit == sends.end()) continue;
    const std::int64_t t_send = sit->second->t_ns;
    const std::int64_t t_rx = rx->t_ns;
    if (t_rx <= t_send) continue;
    // Chain of delivering events that executed after the send, newest first.
    std::vector<std::uint64_t> chain;
    std::uint64_t cur = rx->ev;
    chain.push_back(cur);
    while (true) {
      auto it = g.events.find(cur);
      if (it == g.events.end() || it->second.parent == 0) break;
      auto pit = g.events.find(it->second.parent);
      if (pit == g.events.end() || pit->second.at_ns <= t_send) break;
      cur = it->second.parent;
      chain.push_back(cur);
      if (chain.size() > 1u << 20) break;
    }
    ++pkt_walked;
    std::int64_t sum = 0;
    std::int64_t wait_ns = 0;
    std::int64_t prev = t_send;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      const CausalEvent& e = g.events[*it];
      const std::int64_t seg = e.at_ns - prev;
      const bool first = it == chain.rbegin();
      if (first) wait_ns = seg;
      auto& [ns, n] =
          pkt_layer_ns[first ? "queue_wait"
                             : layer_of_site(g.site_name(e.site))];
      ns += seg;
      ++n;
      sum += seg;
      prev = e.at_ns;
    }
    // The receive annotation time is the last chain event's execution time,
    // so the telescoped sum lands exactly on the measured end-to-end.
    if (sum == t_rx - t_send) ++pkt_exact;
    pkt_e2e_ns += t_rx - t_send;
    if (rows.size() < packet_limit) {
      rows.push_back({uid, t_rx - t_send, wait_ns, chain.size()});
    }
  }
  if (pkt_walked > 0) {
    std::printf("\nsampled packets: %zu delivered (send+rx annotated), "
                "%zu exact, mean e2e %.3f ms\n",
                pkt_walked, pkt_exact,
                static_cast<double>(pkt_e2e_ns) /
                    static_cast<double>(pkt_walked) / 1e6);
    if (!rows.empty()) {
      std::printf("%-12s %10s %12s %6s\n", "uid", "e2e_ms", "wait_ms",
                  "hops");
      for (const PacketRow& r : rows) {
        std::printf("%-12" PRIu64 " %10.3f %12.3f %6zu\n", r.uid,
                    static_cast<double>(r.e2e_ns) / 1e6,
                    static_cast<double>(r.wait_ns) / 1e6, r.hops);
      }
    }
    std::int64_t total_ns = 0;
    for (const auto& [layer, acc] : pkt_layer_ns) total_ns += acc.first;
    std::printf("packet latency attribution (queue_wait = time before the "
                "delivering chain started):\n");
    std::printf("%-12s %14s %8s %10s\n", "layer", "total_ms", "share",
                "segments");
    for (const auto& [layer, acc] : pkt_layer_ns) {
      std::printf("%-12s %14.3f %7.1f%% %10zu\n", layer.c_str(),
                  static_cast<double>(acc.first) / 1e6,
                  total_ns > 0 ? 100.0 * static_cast<double>(acc.first) /
                                     static_cast<double>(total_ns)
                               : 0.0,
                  acc.second);
    }
  }

  // --- DOT subgraph --------------------------------------------------------
  if (!dot_path.empty()) {
    constexpr std::size_t kDotWindows = 5;
    std::string dot = "digraph causal {\n  rankdir=LR;\n  node [shape=box, "
                      "fontsize=10];\n";
    std::size_t emitted = 0;
    for (const CausalSwitch& s : switches) {
      if (s.chain.empty()) continue;
      if (emitted >= kDotWindows) break;
      ++emitted;
      std::uint64_t prev_ev = s.start_ev;
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "  n%" PRIu64 " [label=\"ev %" PRIu64
                    "\\nctrl.switch_start\\n%.3f ms\", style=bold];\n",
                    s.start_ev, s.start_ev,
                    static_cast<double>(s.t_start_ns) / 1e6);
      dot += buf;
      for (auto it = s.chain.rbegin(); it != s.chain.rend(); ++it) {
        const CausalEvent& e = g.events[*it];
        std::snprintf(buf, sizeof(buf),
                      "  n%" PRIu64 " [label=\"ev %" PRIu64
                      "\\n%s\\n%.3f ms\"];\n  n%" PRIu64 " -> n%" PRIu64
                      ";\n",
                      *it, *it, g.site_name(e.site),
                      static_cast<double>(e.at_ns) / 1e6, prev_ev, *it);
        dot += buf;
        prev_ev = *it;
      }
    }
    dot += "}\n";
    if (!wgtt::write_text_file(dot_path, dot)) {
      std::fprintf(stderr, "wgtt-report: cannot write %s\n", dot_path.c_str());
      return 2;
    }
    std::printf("\ndot: %s (%zu window(s))\n", dot_path.c_str(), emitted);
  }

  const std::size_t complete = static_cast<std::size_t>(
      std::count_if(switches.begin(), switches.end(),
                    [](const CausalSwitch& s) { return s.complete; }));
  if (walked < complete || exact < walked || pkt_exact < pkt_walked) {
    std::printf("result: ATTRIBUTION MISMATCH — %zu/%zu windows walked, "
                "%zu exact; %zu/%zu packets exact\n",
                walked, complete, exact, pkt_exact, pkt_walked);
    return 1;
  }
  std::printf("result: ok (%zu switch window(s), %zu sampled packet(s), all "
              "attributions exact)\n",
              walked, pkt_walked);
  return 0;
}

// ---------------------------------------------------------------------------
// decisions: controller decision-audit JSONL summary
// ---------------------------------------------------------------------------

int cmd_decisions(const std::string& path) {
  std::string text;
  if (!wgtt::read_text_file(path, text)) {
    std::fprintf(stderr, "wgtt-report: cannot read %s\n", path.c_str());
    return 2;
  }
  std::map<std::string, std::size_t> outcomes, reasons, liveness;
  std::size_t records = 0, liveness_records = 0;
  double last_t_us = 0.0;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string_view line(text.data() + pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    JsonValue v;
    std::string error;
    if (!wgtt::json_parse(line, v, &error) || !v.is_object()) {
      std::fprintf(stderr, "wgtt-report: %s:%zu: bad record: %s\n",
                   path.c_str(), line_no, error.c_str());
      return 2;
    }
    const std::string kind = v.string_or("kind", "");
    if (kind == "schema") {
      if (!check_schema_record(v, path, "wgtt.decisions", 2)) return 2;
      continue;
    }
    last_t_us = v.number_or("t_us", last_t_us);
    if (kind == "liveness") {
      ++liveness_records;
      ++liveness[v.string_or("event", "?")];
      continue;
    }
    ++records;
    ++outcomes[v.string_or("outcome", "?")];
    ++reasons[v.string_or("reason", "?")];
  }
  std::printf("decision log: %s\n", path.c_str());
  std::printf("decisions: %zu   liveness events: %zu   horizon: %.3f s\n",
              records, liveness_records, last_t_us / 1e6);
  if (!outcomes.empty()) {
    std::printf("\n%-20s %10s\n", "outcome", "count");
    for (const auto& [k, n] : outcomes) {
      std::printf("%-20s %10zu\n", k.c_str(), n);
    }
    std::printf("\n%-20s %10s\n", "reason", "count");
    for (const auto& [k, n] : reasons) {
      std::printf("%-20s %10zu\n", k.c_str(), n);
    }
  }
  if (!liveness.empty()) {
    std::printf("\n%-20s %10s\n", "liveness event", "count");
    for (const auto& [k, n] : liveness) {
      std::printf("%-20s %10zu\n", k.c_str(), n);
    }
  }
  return 0;
}

struct DiffState {
  double tolerance_pct = 25.0;
  double budget_ms = 0.0;  // <= 0: no per-row budget
  bool soft = false;
  int regressions = 0;
  int warnings = 0;

  // Hard per-row wall-time budget: an absolute ceiling on CURRENT rows,
  // deliberately immune to --soft.  The relative check above answers "did
  // this get slower than it was?"; the budget answers "is this still as
  // fast as the optimized hot path promises?", and a soft run must not be
  // able to wave that away.
  void check_budget(const std::string& what, double cur) {
    if (budget_ms <= 0.0) return;
    if (cur <= budget_ms) return;
    std::printf("FAIL  %-40s %10.2f ms over hard budget %.2f ms\n",
                what.c_str(), cur, budget_ms);
    ++regressions;
  }

  // A wall-time (or section-time) comparison: regression when current
  // exceeds baseline by more than the tolerance.  Sub-millisecond baselines
  // are pure scheduling noise and only ever warn.
  void check_time(const std::string& what, double base, double cur) {
    if (base <= 0.0) return;
    const double ratio = cur / base;
    const bool over = ratio > 1.0 + tolerance_pct / 100.0;
    if (!over) return;
    const bool noise_floor = base < 1.0;
    if (noise_floor) {
      std::printf("WARN  %-40s %10.2f -> %10.2f ms (%.2fx, below noise "
                  "floor)\n",
                  what.c_str(), base, cur, ratio);
      ++warnings;
      return;
    }
    std::printf("%s  %-40s %10.2f -> %10.2f ms (%.2fx > %.0f%% tolerance)\n",
                soft ? "WARN" : "FAIL", what.c_str(), base, cur, ratio,
                tolerance_pct);
    if (soft) {
      ++warnings;
    } else {
      ++regressions;
    }
  }

  void warn_drift(const std::string& what, double base, double cur) {
    std::printf("WARN  %-40s %g -> %g (same-seed metric drift)\n",
                what.c_str(), base, cur);
    ++warnings;
  }
};

int cmd_diff(const std::string& base_path, const std::string& cur_path,
             DiffState st) {
  JsonValue base, cur;
  if (!load_report(base_path, base) || !load_report(cur_path, cur)) return 2;

  // --- schema gate: the reports must describe the same sweep --------------
  const std::string base_bench = base.string_or("bench", "");
  const std::string cur_bench = cur.string_or("bench", "");
  if (base_bench != cur_bench) {
    std::fprintf(stderr,
                 "wgtt-report: bench id mismatch: \"%s\" vs \"%s\"\n",
                 base_bench.c_str(), cur_bench.c_str());
    return 2;
  }
  const auto& base_runs = base.find("runs")->as_array();
  const auto& cur_runs = cur.find("runs")->as_array();
  if (base_runs.size() != cur_runs.size()) {
    std::fprintf(stderr, "wgtt-report: run count mismatch: %zu vs %zu\n",
                 base_runs.size(), cur_runs.size());
    return 2;
  }
  for (std::size_t i = 0; i < base_runs.size(); ++i) {
    const std::string bl = base_runs[i].string_or("label", "");
    const std::string cl = cur_runs[i].string_or("label", "");
    if (bl != cl) {
      std::fprintf(stderr,
                   "wgtt-report: run %zu label mismatch: \"%s\" vs \"%s\"\n",
                   i, bl.c_str(), cl.c_str());
      return 2;
    }
    // Comparing runs produced by different handoff policies is apples to
    // oranges: goodput/switch deltas would be policy differences, not
    // regressions.  (Pre-policy reports lack the field; "" matches "".)
    const std::string bp = base_runs[i].string_or("policy", "");
    const std::string cp = cur_runs[i].string_or("policy", "");
    if (bp != cp) {
      std::fprintf(
          stderr,
          "wgtt-report: run \"%s\" policy mismatch: \"%s\" vs \"%s\"\n",
          bl.c_str(), bp.c_str(), cp.c_str());
      return 2;
    }
  }

  std::printf("diff %s: %s -> %s (tolerance %.0f%%%s", base_bench.c_str(),
              base_path.c_str(), cur_path.c_str(), st.tolerance_pct,
              st.soft ? ", soft" : "");
  if (st.budget_ms > 0.0) {
    std::printf(", hard budget %.0f ms/row", st.budget_ms);
  }
  std::printf(")\n");

  // --- deterministic outputs: same seed should mean same numbers ----------
  for (std::size_t i = 0; i < base_runs.size(); ++i) {
    const std::string label = base_runs[i].string_or("label", "?");
    const double bg = base_runs[i].number_or("goodput_mbps", 0.0);
    const double cg = cur_runs[i].number_or("goodput_mbps", 0.0);
    if (std::fabs(cg - bg) > 0.01 * std::max(std::fabs(bg), 1e-9)) {
      st.warn_drift(label + " goodput_mbps", bg, cg);
    }
    const double bs = base_runs[i].number_or("switches", 0.0);
    const double cs = cur_runs[i].number_or("switches", 0.0);
    if (bs != cs) st.warn_drift(label + " switches", bs, cs);
  }

  // --- performance: sweep wall, per-run wall, profile sections ------------
  st.check_time("sweep wall_ms", base.number_or("wall_ms", 0.0),
                cur.number_or("wall_ms", 0.0));
  for (std::size_t i = 0; i < base_runs.size(); ++i) {
    st.check_time(base_runs[i].string_or("label", "?") + " wall_ms",
                  base_runs[i].number_or("wall_ms", 0.0),
                  cur_runs[i].number_or("wall_ms", 0.0));
    st.check_budget(cur_runs[i].string_or("label", "?") + " wall_ms",
                    cur_runs[i].number_or("wall_ms", 0.0));
  }

  const ProfileTotals base_prof = aggregate_profile(base);
  const ProfileTotals cur_prof = aggregate_profile(cur);
  for (const auto& [name, base_ns] : base_prof.sections) {
    // Sections under 1 % of the baseline total are timer noise; skip them.
    if (base_prof.total_ns <= 0 || base_ns * 100 < base_prof.total_ns) {
      continue;
    }
    std::int64_t cur_ns = 0;
    for (const auto& [cn, cv] : cur_prof.sections) {
      if (cn == name) {
        cur_ns = cv;
        break;
      }
    }
    st.check_time("profile " + name, static_cast<double>(base_ns) / 1e6,
                  static_cast<double>(cur_ns) / 1e6);
  }

  if (st.regressions > 0) {
    std::printf("result: %d regression(s), %d warning(s)\n", st.regressions,
                st.warnings);
    return 1;
  }
  std::printf("result: ok (%d warning(s))\n", st.warnings);
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: wgtt-report show FILE [--json]\n"
      "       wgtt-report diff BASELINE CURRENT [--tolerance PCT] [--soft]\n"
      "                        [--budget-ms MS]\n"
      "       wgtt-report packets FILE [--limit N] [--switches]\n"
      "       wgtt-report critical-path FILE [--packets N] [--dot PATH]\n"
      "       wgtt-report decisions FILE\n"
      "       wgtt-report health FILE [--strict] [--baseline FILE]\n"
      "                          [--emit-baseline FILE]\n"
      "\n"
      "exit codes: 0 ok, 1 regression/health-gate failure, 2 schema/usage "
      "error\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();

  if (args[0] == "show") {
    bool json = false;
    std::string path;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--json") {
        json = true;
      } else if (args[i].rfind("--", 0) == 0) {
        return usage();
      } else if (path.empty()) {
        path = args[i];
      } else {
        return usage();
      }
    }
    if (path.empty()) return usage();
    return cmd_show(path, json);
  }
  if (args[0] == "critical-path") {
    std::size_t packet_limit = 5;
    std::string path, dot;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--packets") {
        if (i + 1 >= args.size()) return usage();
        packet_limit = static_cast<std::size_t>(std::atol(args[++i].c_str()));
      } else if (args[i].rfind("--packets=", 0) == 0) {
        packet_limit = static_cast<std::size_t>(
            std::atol(args[i].c_str() + std::strlen("--packets=")));
      } else if (args[i] == "--dot") {
        if (i + 1 >= args.size()) return usage();
        dot = args[++i];
      } else if (args[i].rfind("--dot=", 0) == 0) {
        dot = args[i].substr(std::strlen("--dot="));
      } else if (args[i].rfind("--", 0) == 0) {
        return usage();
      } else if (path.empty()) {
        path = args[i];
      } else {
        return usage();
      }
    }
    if (path.empty()) return usage();
    return cmd_critical_path(path, packet_limit, dot);
  }
  if (args[0] == "decisions") {
    if (args.size() != 2) return usage();
    return cmd_decisions(args[1]);
  }
  if (args[0] == "packets") {
    std::size_t limit = 5;
    bool switches = false;
    std::string path;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--switches") {
        switches = true;
      } else if (args[i] == "--limit") {
        if (i + 1 >= args.size()) return usage();
        limit = static_cast<std::size_t>(std::atol(args[++i].c_str()));
      } else if (args[i].rfind("--limit=", 0) == 0) {
        limit = static_cast<std::size_t>(
            std::atol(args[i].c_str() + std::strlen("--limit=")));
      } else if (args[i].rfind("--", 0) == 0) {
        return usage();
      } else if (path.empty()) {
        path = args[i];
      } else {
        return usage();
      }
    }
    if (path.empty()) return usage();
    return cmd_packets(path, limit, switches);
  }
  if (args[0] == "health") {
    bool strict = false;
    std::string path, baseline, emit_baseline;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--strict") {
        strict = true;
      } else if (args[i] == "--baseline") {
        if (i + 1 >= args.size()) return usage();
        baseline = args[++i];
      } else if (args[i].rfind("--baseline=", 0) == 0) {
        baseline = args[i].substr(std::strlen("--baseline="));
      } else if (args[i] == "--emit-baseline") {
        if (i + 1 >= args.size()) return usage();
        emit_baseline = args[++i];
      } else if (args[i].rfind("--emit-baseline=", 0) == 0) {
        emit_baseline = args[i].substr(std::strlen("--emit-baseline="));
      } else if (args[i].rfind("--", 0) == 0) {
        return usage();
      } else if (path.empty()) {
        path = args[i];
      } else {
        return usage();
      }
    }
    if (path.empty()) return usage();
    return cmd_health(path, strict, baseline, emit_baseline);
  }
  if (args[0] == "diff") {
    DiffState st;
    std::vector<std::string> paths;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--soft") {
        st.soft = true;
      } else if (args[i] == "--tolerance") {
        if (i + 1 >= args.size()) return usage();
        st.tolerance_pct = std::atof(args[++i].c_str());
      } else if (args[i].rfind("--tolerance=", 0) == 0) {
        st.tolerance_pct = std::atof(args[i].c_str() + std::strlen("--tolerance="));
      } else if (args[i] == "--budget-ms") {
        if (i + 1 >= args.size()) return usage();
        st.budget_ms = std::atof(args[++i].c_str());
      } else if (args[i].rfind("--budget-ms=", 0) == 0) {
        st.budget_ms = std::atof(args[i].c_str() + std::strlen("--budget-ms="));
      } else if (args[i].rfind("--", 0) == 0) {
        return usage();
      } else {
        paths.push_back(args[i]);
      }
    }
    if (paths.size() != 2) return usage();
    return cmd_diff(paths[0], paths[1], st);
  }
  return usage();
}
