// Bulk transfer applications — the iperf3 TCP/UDP workloads behind the
// paper's end-to-end throughput experiments (Figs. 13-17, 20, 23).
#pragma once

#include <memory>

#include "transport/tcp_connection.h"
#include "transport/udp_flow.h"

namespace wgtt::apps {

/// Saturating TCP download: the server side writes an effectively infinite
/// stream; goodput is measured at the client.
class BulkTcpApp {
 public:
  BulkTcpApp(sim::Scheduler& sched, transport::IpIdAllocator& ip_ids,
             transport::TcpConfig cfg, std::uint32_t flow_id,
             net::NodeId server, net::NodeId client);

  transport::TcpConnection& connection() { return conn_; }
  void start();

  double average_goodput_mbps(Time duration) const {
    return conn_.goodput().average_mbps_over(duration);
  }

 private:
  transport::TcpConnection conn_;
};

/// Constant-rate UDP download (or upload — direction is just wiring).
class BulkUdpApp {
 public:
  BulkUdpApp(sim::Scheduler& sched, transport::IpIdAllocator& ip_ids,
             transport::UdpFlowConfig cfg);

  transport::UdpSender& sender() { return sender_; }
  transport::UdpReceiver& receiver() { return receiver_; }
  void start() { sender_.start(); }

  double average_goodput_mbps(Time duration) const {
    return receiver_.throughput().average_mbps_over(duration);
  }
  double loss_rate() const { return receiver_.loss_rate(); }

 private:
  transport::UdpSender sender_;
  transport::UdpReceiver receiver_;
};

}  // namespace wgtt::apps
