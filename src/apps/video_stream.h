// Online video streaming case study (paper §5.4, Table 4).
//
// Models VLC playing an HD stream fetched over TCP (the paper streams a
// cached 1280x720 file over FTP): bytes arrive through a TcpConnection into
// a playback buffer; playback starts after a 1,500 ms pre-buffer and drains
// the buffer at the video bitrate.  An empty buffer is a rebuffer event —
// playback stalls until the pre-buffer refills.  The metric is the rebuffer
// ratio: stalled time / transit duration.
#pragma once

#include <cstdint>
#include <vector>

#include "transport/tcp_connection.h"

namespace wgtt::apps {

struct VideoStreamConfig {
  double video_bitrate_bps = 4e6;     // 720p HD
  Time prebuffer = Time::ms(1500);    // paper's VLC setting
  Time playback_tick = Time::ms(40);  // one frame at 25 fps
};

class VideoStreamApp {
 public:
  VideoStreamApp(sim::Scheduler& sched, transport::IpIdAllocator& ip_ids,
                 transport::TcpConfig tcp_cfg, VideoStreamConfig cfg,
                 std::uint32_t flow_id, net::NodeId server,
                 net::NodeId client);

  transport::TcpConnection& connection() { return conn_; }

  void start();

  bool playing() const { return playing_; }
  std::uint32_t rebuffer_events() const { return rebuffer_events_; }
  Time stalled_time() const { return stalled_; }
  Time playing_time() const { return played_; }
  /// Fraction of the observation window spent stalled (Table 4's metric).
  double rebuffer_ratio(Time observation) const {
    if (observation <= Time::zero()) return 0.0;
    return stalled_ / observation;
  }
  double buffered_seconds() const {
    return static_cast<double>(buffer_bytes_) * 8.0 / cfg_.video_bitrate_bps;
  }

 private:
  void on_bytes(std::size_t bytes, Time when);
  void tick();

  sim::Scheduler& sched_;
  VideoStreamConfig cfg_;
  transport::TcpConnection conn_;
  std::uint64_t buffer_bytes_ = 0;
  bool started_ = false;
  bool playing_ = false;
  bool began_playback_ = false;
  bool stall_pending_refill_ = false;
  std::uint32_t rebuffer_events_ = 0;
  Time stalled_ = Time::zero();
  Time played_ = Time::zero();
};

}  // namespace wgtt::apps
