// Remote video conferencing case study (paper §5.4, Fig. 24).
//
// A real-time video sender emits frames at a fixed frame rate; each frame
// is fragmented into UDP datagrams.  The receiver counts a frame as
// rendered only when every fragment arrives, and samples rendered
// frames-per-second once per second (the paper screen-scrapes the apps'
// fps counters with scrot at 1 Hz).
//
// Two sender profiles:
//  * Skype-like:   fixed 720p frame size — loss directly costs frames;
//  * Hangouts-like: resolution-adaptive — frame size shrinks when recent
//    delivery degrades, which preserves fps at lower quality (matching the
//    paper's observation that Hangouts reaches ~56 fps where Skype holds
//    ~20).
#pragma once

#include <cstdint>
#include <map>

#include "net/packet.h"
#include "sim/scheduler.h"
#include "transport/udp_flow.h"
#include "util/health.h"
#include "util/stats.h"

namespace wgtt::apps {

struct ConferenceConfig {
  std::uint32_t flow_id = 0;
  net::NodeId src = 0;
  net::NodeId dst = 0;
  double frame_rate = 30.0;
  double nominal_bitrate_bps = 1.5e6;  // 720p realtime video
  std::size_t fragment_bytes = 1200;
  bool adaptive = false;          // Hangouts-like resolution scaling
  double min_scale = 0.15;        // floor of adaptive frame shrinking
  Time adaptation_period = Time::sec(1);
};

class ConferenceApp {
 public:
  ConferenceApp(sim::Scheduler& sched, transport::IpIdAllocator& ip_ids,
                ConferenceConfig cfg);

  /// Network egress for fragments (wired by the harness).
  std::function<void(net::PacketPtr)> transmit;

  void start();
  void stop() { running_ = false; }

  /// Network ingress at the receiver.
  void on_packet(const net::PacketPtr& pkt);

  std::uint32_t flow_id() const { return cfg_.flow_id; }

  /// One sample per elapsed second: frames fully rendered in that second.
  const SampleSet& fps_samples() const { return fps_samples_; }
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_rendered() const { return frames_rendered_; }
  double current_scale() const { return scale_; }

 private:
  void send_frame();
  void sample_fps();
  void adapt();

  sim::Scheduler& sched_;
  transport::IpIdAllocator& ip_ids_;
  ConferenceConfig cfg_;
  obs::HealthEngine* health_ = nullptr;
  bool running_ = false;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_rendered_ = 0;
  double scale_ = 1.0;

  struct FrameProgress {
    std::size_t fragments_expected = 0;
    std::size_t fragments_received = 0;
  };
  std::map<std::uint64_t, FrameProgress> pending_;  // frame id -> progress

  // fps sampling
  std::uint64_t rendered_this_second_ = 0;
  SampleSet fps_samples_;

  // adaptation feedback
  std::uint64_t frames_sent_this_period_ = 0;
  std::uint64_t frames_rendered_this_period_ = 0;
};

}  // namespace wgtt::apps
