#include "apps/bulk.h"

namespace wgtt::apps {

namespace {
// Effectively infinite backlog for a saturating source.
constexpr std::size_t kBulkBytes = std::size_t{1} << 40;
}  // namespace

BulkTcpApp::BulkTcpApp(sim::Scheduler& sched,
                       transport::IpIdAllocator& ip_ids,
                       transport::TcpConfig cfg, std::uint32_t flow_id,
                       net::NodeId server, net::NodeId client)
    : conn_(sched, ip_ids, cfg, flow_id, server, client) {}

void BulkTcpApp::start() { conn_.app_send(kBulkBytes); }

BulkUdpApp::BulkUdpApp(sim::Scheduler& sched,
                       transport::IpIdAllocator& ip_ids,
                       transport::UdpFlowConfig cfg)
    : sender_(sched, ip_ids, cfg), receiver_(sched, cfg.throughput_bin) {}

}  // namespace wgtt::apps
