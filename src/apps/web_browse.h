// Web browsing case study (paper §5.4, Table 5).
//
// Loads the paper's 2.1 MB eBay homepage from a local server: an initial
// HTML document followed by embedded objects fetched over a small pool of
// parallel persistent connections (HTTP/1.1 style).  Each fetch costs an
// uplink request plus the object transfer; the page-load time is measured
// from start() until the last object completes.  A load that has not
// finished by the experiment deadline reports "infinity" — exactly how the
// paper renders the 15/20 mph baseline rows.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/packet.h"
#include "transport/tcp_connection.h"
#include "util/health.h"

namespace wgtt::apps {

struct WebBrowseConfig {
  std::size_t page_bytes = 2'100'000;  // 2.1 MB (paper's eBay homepage)
  std::size_t num_objects = 24;
  std::size_t parallel_connections = 6;
  std::size_t request_bytes = 420;  // GET + headers
  /// A request with no response bytes is retransmitted after this long
  /// (doubling each attempt) — the browser/TCP-SYN retry behaviour that
  /// keeps a fetch alive across a coverage gap.
  Time request_timeout = Time::sec(1);
  std::uint32_t first_flow_id = 0;
  net::NodeId server = 0;
  net::NodeId client = 0;
};

/// Marker payload on uplink request packets.
struct WebRequestMsg {
  std::size_t object_index = 0;
  std::uint32_t flow_id = 0;
};

class WebBrowseApp {
 public:
  WebBrowseApp(sim::Scheduler& sched, transport::IpIdAllocator& ip_ids,
               transport::TcpConfig tcp_cfg, WebBrowseConfig cfg);

  /// Uplink egress for HTTP requests (wired by the harness).
  std::function<void(net::PacketPtr)> transmit_request;
  /// Fired when the page completes.
  std::function<void(Time load_time)> on_page_loaded;

  void start();

  /// Server side: a request arrived — start streaming the object.
  void on_request(const WebRequestMsg& req);

  std::size_t connections() const { return conns_.size(); }
  transport::TcpConnection& connection(std::size_t i) { return *conns_[i]; }

  bool loaded() const { return loaded_; }
  /// Load time, or nullopt if the page never finished (the paper's inf).
  std::optional<Time> load_time() const {
    if (!loaded_) return std::nullopt;
    return load_time_;
  }
  std::size_t objects_completed() const { return objects_completed_; }

 private:
  void issue_next_request(std::size_t conn_index);
  void send_request(std::size_t conn_index, std::size_t object,
                    Time timeout);
  void on_object_bytes(std::size_t conn_index, std::size_t bytes);

  sim::Scheduler& sched_;
  transport::IpIdAllocator& ip_ids_;
  WebBrowseConfig cfg_;
  obs::HealthEngine* health_ = nullptr;
  std::vector<std::unique_ptr<transport::TcpConnection>> conns_;
  std::vector<std::size_t> conn_outstanding_bytes_;  // remaining in cur object
  std::vector<bool> conn_got_bytes_;  // response started (stop retrying)
  std::vector<bool> served_;          // server side: object already sent
  std::size_t object_bytes_ = 0;       // size of each object
  std::size_t next_object_ = 0;        // next object index to request
  std::size_t objects_completed_ = 0;
  Time started_;
  Time load_time_ = Time::zero();
  bool loaded_ = false;
  bool started_flag_ = false;
};

}  // namespace wgtt::apps
