#include "mac/wifi_device.h"

#include <algorithm>
#include <cassert>

#include "phy/esnr.h"
#include "util/logging.h"
#include "util/units.h"

namespace wgtt::mac {

// ---------------------------------------------------------------------------
// MacContext
// ---------------------------------------------------------------------------

MacContext::MacContext(sim::Scheduler& sched, Medium& medium,
                       const channel::ChannelModel& channel,
                       const phy::ErrorModel& error_model, Rng rng)
    : sched_(sched),
      medium_(medium),
      channel_(channel),
      error_model_(error_model),
      rng_(rng) {}

void MacContext::register_device(WifiDevice* dev) {
  assert(dev);
  by_id_[dev->id()] = dev;
  devices_.push_back(dev);
}

WifiDevice* MacContext::device(net::NodeId id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

// ---------------------------------------------------------------------------
// WifiDevice
// ---------------------------------------------------------------------------

namespace {
constexpr Time kPeriodicTick = Time::ms(5);
constexpr std::size_t kBlockAckBytes = 32;
constexpr std::size_t kNullFrameBytes = 36;
constexpr unsigned kMgmtRetryLimit = 7;
}  // namespace

WifiDevice::WifiDevice(MacContext& ctx, net::NodeId self, WifiDeviceConfig cfg)
    : ctx_(ctx),
      self_(self),
      cfg_(std::move(cfg)),
      monitor_enabled_(cfg_.monitor_mode),
      airtime_(cfg_.airtime),
      aggregator_(airtime_),
      rng_(ctx.fork_rng(0xD0D0ull * 1000003 + self)),
      cw_(cfg_.airtime.cw_min) {
  if (!cfg_.rate_control_factory) {
    cfg_.rate_control_factory = [] {
      return std::make_unique<phy::MinstrelRateControl>();
    };
  }
  if (auto* reg = metrics::MetricsRegistry::current()) {
    m_airtime_ns_ =
        &reg->counter("mac.airtime_ns.node" + std::to_string(self_));
    m_airtime_total_ns_ = &reg->counter("mac.airtime_ns_total");
    m_ampdu_mpdus_ = &reg->histogram(
        "mac.ampdu_mpdus", metrics::exponential_buckets(1.0, 2.0, 7));
    m_ba_rollups_ = &reg->counter("mac.block_ack_rollups");
    m_mcs_index_ = &reg->histogram("phy.mcs_index",
                                   metrics::linear_buckets(0.0, 1.0, 16));
    m_esnr_db_ = &reg->histogram("phy.esnr_db",
                                 metrics::linear_buckets(-10.0, 5.0, 13));
  }
  tracer_ = trace::Tracer::current();
  recorder_ = net::FlightRecorder::current();
  causal_ = obs::CausalTracer::current();
  health_ = obs::HealthEngine::current();
  if (auto* p = prof::Profiler::current()) {
    prof_ = p;
    p_exchange_ = &p->section("mac.exchange");
  }
  ctx_.register_device(this);
  ctx_.medium().attach(self_,
                       cfg_.is_ap
                           ? ctx_.channel().radio().ap_tx_power_dbm
                           : ctx_.channel().radio().client_tx_power_dbm,
                       cfg_.channel);
  periodic_tick();
}

void WifiDevice::periodic_tick() {
  const Time now = ctx_.sched().now();
  for (auto& [stream, buf] : reorder_) buf->flush_expired(now);
  // Client keepalive: make sure APs keep hearing us (CSI freshness).
  if (!cfg_.is_ap && cfg_.keepalive_interval > Time::zero() &&
      keepalive_peer_ != 0 &&
      now - last_uplink_tx_ >= cfg_.keepalive_interval && !mgmt_in_flight_ &&
      mgmt_queue_.empty()) {
    net::Packet null;
    null.type = net::PacketType::kMgmt;
    null.src = self_;
    null.dst = keepalive_peer_;
    null.size_bytes = kNullFrameBytes;
    null.created = now;
    send_management(keepalive_peer_, net::make_packet(null));
  }
  ctx_.sched().schedule(kPeriodicTick, [this]() { periodic_tick(); });
}

WifiDevice::PeerState& WifiDevice::peer_state(net::NodeId peer) {
  auto it = peers_.find(peer);
  if (it == peers_.end()) {
    PeerState st;
    st.rate_control = cfg_.rate_control_factory();
    it = peers_.emplace(peer, std::move(st)).first;
  }
  return it->second;
}

bool WifiDevice::enqueue(net::NodeId peer, net::PacketPtr pkt,
                         std::optional<std::uint16_t> explicit_seq) {
  PeerState& st = peer_state(peer);
  if (st.queue.size() >= cfg_.hw_queue_limit) return false;
  st.quench_pending = false;  // fresh traffic un-quenches the peer
  Mpdu m;
  m.pkt = std::move(pkt);
  if (explicit_seq) {
    m.seq = static_cast<std::uint16_t>(*explicit_seq & (kSeqModulo - 1));
    st.next_seq = static_cast<std::uint16_t>((m.seq + 1) & (kSeqModulo - 1));
  } else {
    m.seq = st.next_seq;
    st.next_seq = static_cast<std::uint16_t>((st.next_seq + 1) & (kSeqModulo - 1));
  }
  st.queue.push_back(std::move(m));
  maybe_start_tx();
  return true;
}

std::size_t WifiDevice::queue_depth(net::NodeId peer) const {
  auto it = peers_.find(peer);
  std::size_t n = it == peers_.end() ? 0 : it->second.queue.size();
  if (in_flight_ && in_flight_->peer == peer) n += in_flight_->aggregate.size();
  return n;
}

bool WifiDevice::has_room(net::NodeId peer) const {
  auto it = peers_.find(peer);
  if (it == peers_.end()) return true;
  return it->second.queue.size() < cfg_.hw_queue_limit;
}

std::size_t WifiDevice::flush_queue(net::NodeId peer, net::DropCause cause) {
  auto it = peers_.find(peer);
  if (it == peers_.end()) return 0;
  const std::size_t n = it->second.queue.size();
  if (health_) {
    std::size_t fr = 0;
    for (const Mpdu& m : it->second.queue) {
      if (net::flight_recorded(m.pkt->type)) ++fr;
    }
    health_->packet_dropped(fr);
  }
  if (recorder_) {
    for (const Mpdu& m : it->second.queue) {
      if (!net::flight_recorded(m.pkt->type)) continue;
      recorder_->drop(m.pkt->uid, ctx_.sched().now(), net::Hop::kMacDrop,
                      self_, cause, {{"peer", peer}, {"seq", m.seq}});
    }
  }
  it->second.queue.clear();
  if (in_flight_ && in_flight_->peer == peer) {
    it->second.quench_pending = true;
  }
  return n;
}

void WifiDevice::set_down(bool down) {
  if (down == down_) return;
  down_ = down;
  if (!down) {
    // Recovery: restart transmission if anything queued while we were dark
    // (management frames survive the crash flush).
    maybe_start_tx();
    return;
  }
  // Crash: everything still queued is lost with the radio.  The in-flight
  // exchange (if any) is quenched via the flush, so its unacked MPDUs are
  // dropped rather than re-queued when it resolves.
  for (auto& [peer, st] : peers_) {
    if (!st.queue.empty() || (in_flight_ && in_flight_->peer == peer)) {
      flush_queue(peer, net::DropCause::kFaultInjected);
    }
  }
}

void WifiDevice::set_refill_handler(net::NodeId peer,
                                    std::function<void()> fn) {
  peer_state(peer).refill = std::move(fn);
}

void WifiDevice::set_channel(unsigned ch, Time retune_pause) {
  if (ch == cfg_.channel) return;
  cfg_.channel = ch;
  ctx_.medium().set_channel(self_, ch);
  retuning_until_ = ctx_.sched().now() + retune_pause;
}

void WifiDevice::update_peer_esnr(net::NodeId peer, double esnr_db,
                                  Time now) {
  auto* esnr_rc =
      dynamic_cast<phy::EsnrRateControl*>(peer_state(peer).rate_control.get());
  if (esnr_rc) esnr_rc->update_esnr(esnr_db, now);
}

void WifiDevice::set_shadow_stream(net::NodeId peer, bool on) {
  // find(), not peer_state(): clearing shadow for a peer this radio never
  // queued for must not materialize per-peer MAC state.
  auto it = peers_.find(peer);
  if (it != peers_.end()) {
    it->second.shadow_stream = on;
  } else if (on) {
    peer_state(peer).shadow_stream = true;
  }
}

bool WifiDevice::shadow_stream(net::NodeId peer) const {
  auto it = peers_.find(peer);
  return it != peers_.end() && it->second.shadow_stream;
}

void WifiDevice::maybe_start_tx() {
  if (down_ || in_flight_ || tx_armed_ || mgmt_in_flight_) return;
  if (!mgmt_queue_.empty()) {
    start_mgmt_tx();
    return;
  }
  // Round-robin across peers with queued traffic.
  if (peers_.empty()) return;
  auto it = peers_.upper_bound(last_served_peer_);
  for (std::size_t i = 0; i <= peers_.size(); ++i) {
    if (it == peers_.end()) it = peers_.begin();
    if (!it->second.queue.empty()) break;
    ++it;
  }
  if (it == peers_.end() || it->second.queue.empty()) return;
  last_served_peer_ = it->first;

  PeerState& st = it->second;
  const Time now = ctx_.sched().now();
  const phy::McsInfo& mcs = st.rate_control->select(now);
  // Sampling probes ride on short aggregates, as Minstrel's do.
  const std::size_t max_frames =
      st.rate_control->last_was_probe() ? 4 : SIZE_MAX;
  PendingExchange ex;
  ex.peer = it->first;
  ex.mcs = &mcs;
  ex.aggregate = aggregator_.build(st.queue, mcs, max_frames);
  assert(!ex.aggregate.empty());
  ex.merged_ba.client = cfg_.is_ap ? ex.peer : self_;
  ex.merged_ba.addressed_ap = cfg_.is_ap ? self_ : ex.peer;
  ex.merged_ba.start_seq = ex.aggregate.front().seq;
  in_flight_ = std::move(ex);
  tx_armed_ = true;

  // The aggregate left the queue: give upper stages a chance to refill.
  if (st.refill && st.queue.size() < cfg_.hw_queue_limit) {
    ctx_.sched().schedule(Time::zero(), st.refill);
  }

  const Time duration = airtime_.exchange_duration(
      mcs, in_flight_->aggregate.size(),
      AmpduAggregator::total_bytes(in_flight_->aggregate));
  const auto slots = static_cast<unsigned>(rng_.uniform_int(0, cw_));
  ctx_.medium().request(self_, duration, slots, [this]() { begin_exchange(); });
}

double WifiDevice::effective_esnr_db(net::NodeId tx_node, net::NodeId rx_node,
                                     phy::Modulation mod, Time t,
                                     phy::Csi* csi_out) {
  const WifiDevice* tx_dev = ctx_.device(tx_node);
  assert(tx_dev);
  phy::Csi csi;
  if (tx_dev->is_ap()) {
    csi = ctx_.channel().downlink_csi(tx_node, rx_node, t);
  } else {
    csi = ctx_.channel().uplink_csi(rx_node, tx_node, t);
  }
  // Interference raises the effective noise floor.
  const double interference_mw =
      ctx_.medium().interference_mw_at(rx_node, tx_node);
  double shift_db = 0.0;
  if (interference_mw > 0.0) {
    const double noise_mw = dbm_to_mw(ctx_.channel().noise_floor_dbm());
    shift_db = linear_to_db(1.0 + interference_mw / noise_mw);
  }
  if (csi_out) *csi_out = csi;
  const double esnr = phy::effective_snr_db(csi, mod) - shift_db;
  if (m_esnr_db_) m_esnr_db_->record(esnr);
  return esnr;
}

void WifiDevice::begin_exchange() {
  prof::ScopedSection timer(prof_, p_exchange_);
  assert(in_flight_);
  tx_armed_ = false;
  const Time now = ctx_.sched().now();
  PendingExchange& ex = *in_flight_;
  const Time duration = airtime_.exchange_duration(
      *ex.mcs, ex.aggregate.size(), AmpduAggregator::total_bytes(ex.aggregate));
  // Channel is sampled mid-frame for the data and at the end for the BA.
  const Time data_time = now + (duration - airtime_.block_ack_duration()) * 0.5;
  const Time ba_time = now + duration - airtime_.block_ack_duration() * 0.5;

  ++stats_.aggregates_sent;
  stats_.mpdus_sent += ex.aggregate.size();
  if (!cfg_.is_ap) {
    ++stats_.uplink_frames_sent;
    last_uplink_tx_ = now;
  }
  if (m_airtime_ns_) {
    const auto ns = static_cast<std::uint64_t>(duration.to_ns());
    m_airtime_ns_->add(ns);
    m_airtime_total_ns_->add(ns);
    m_ampdu_mpdus_->record(static_cast<double>(ex.aggregate.size()));
    m_mcs_index_->record(static_cast<double>(ex.mcs->index));
  }
  if (tracer_) {
    tracer_->complete("mac", cfg_.is_ap ? "ampdu_dl" : "ampdu_ul", now,
                      duration, static_cast<std::int64_t>(self_),
                      {{"peer", static_cast<double>(ex.peer)},
                       {"mpdus", static_cast<double>(ex.aggregate.size())},
                       {"mcs", static_cast<double>(ex.mcs->index)}});
  }
  if (recorder_) {
    // One record per MPDU per transmission attempt: the MCS it rode at,
    // which A-MPDU carried it, and the attempt count (retries live in the
    // per-AP Mpdu, never on the shared packet).
    for (const Mpdu& m : ex.aggregate) {
      if (!net::flight_recorded(m.pkt->type)) continue;
      recorder_->record(m.pkt->uid, now, net::Hop::kMacTx, self_,
                        {{"peer", ex.peer},
                         {"seq", m.seq},
                         {"attempt", m.retries + 1},
                         {"mcs", ex.mcs->index},
                         {"ampdu",
                          static_cast<std::int64_t>(stats_.aggregates_sent)}});
    }
  }
  if (causal_) {
    for (const Mpdu& m : ex.aggregate) {
      if (!net::flight_recorded(m.pkt->type) || !causal_->sampled(m.pkt->uid)) {
        continue;
      }
      causal_->annotate("mac.tx",
                        {{"uid", static_cast<std::int64_t>(m.pkt->uid)},
                         {"dev", self_},
                         {"peer", ex.peer},
                         {"attempt", m.retries + 1}});
    }
  }

  evaluate_receptions(ex, data_time, ba_time);

  ex.completion_event =
      ctx_.sched().schedule(duration, [this]() { complete_exchange(); });
}

void WifiDevice::evaluate_receptions(PendingExchange& ex, Time data_time,
                                     Time ba_time) {
  const phy::ErrorModel& em = ctx_.error_model();
  const Time deliver_at = ba_time;  // receptions surface when the frame ends

  if (cfg_.is_ap) {
    // ---- Downlink: self (AP) -> client `ex.peer`. -------------------------
    WifiDevice* client = ctx_.device(ex.peer);
    BlockAckInfo ba;
    ba.client = ex.peer;
    ba.addressed_ap = self_;
    ba.start_seq = ex.aggregate.front().seq;
    bool client_got_any = false;
    if (client && client->channel() == cfg_.channel &&
        client->can_receive(data_time)) {
      phy::Csi csi;
      const double esnr = effective_esnr_db(self_, ex.peer,
                                            ex.mcs->modulation, data_time, &csi);
      auto meta = std::make_shared<const RxMeta>(
          RxMeta{self_, csi, true, ex.mcs->index});
      // Overlap windows deliver under our own id, not the shared BSSID, so
      // the client's reorder buffer treats us as an independent transmitter
      // and duplicate copies surface at the IP layer (set_shadow_stream()).
      const net::NodeId stream = shadow_stream(ex.peer) ? self_ : cfg_.bssid;
      // One delivery event per aggregate, not per MPDU: the per-MPDU events
      // all carried the same timestamp and consecutive sequence numbers, so
      // delivering them back-to-back from one callback preserves execution
      // order exactly while shedding the per-MPDU event and closure-copy
      // cost (the shared meta also spares one 472-byte Csi copy per MPDU).
      std::vector<std::pair<std::uint16_t, net::PacketPtr>> delivered;
      for (const Mpdu& m : ex.aggregate) {
        if (rng_.bernoulli(em.delivery_probability(*ex.mcs, esnr,
                                                   m.pkt->size_bytes))) {
          ba.bitmap.set(seq_distance(ba.start_seq, m.seq));
          client_got_any = true;
          delivered.emplace_back(m.seq, m.pkt);
        }
      }
      if (!delivered.empty()) {
        ctx_.sched().schedule_at(
            deliver_at, [client, stream, batch = std::move(delivered),
                         meta]() {
              for (const auto& [seq, pkt] : batch) {
                client->deliver_upward(stream, seq, pkt, *meta);
              }
            });
      }
    }
    if (client_got_any) {
      // The client responds with a Block ACK; evaluate who hears it.
      // 1. Ourselves (the transmitting AP):
      phy::Csi ba_csi;
      const double ba_esnr = effective_esnr_db(
          ex.peer, self_, phy::basic_mcs().modulation, ba_time, &ba_csi);
      const double ba_p =
          em.delivery_probability(phy::basic_mcs(), ba_esnr, kBlockAckBytes);
      if (rng_.bernoulli(ba_p)) {
        ex.own_ba = true;
        ex.any_ba = true;
        ex.merged_ba = ba;
        // A decoded BA is also an uplink frame: a CSI sample (§3.1.1).
        if (on_frame_heard) {
          RxMeta meta;
          meta.transmitter = ex.peer;
          meta.csi = ba_csi;
          meta.addressed = true;
          ctx_.sched().schedule_at(deliver_at, [this, meta]() {
            if (on_frame_heard) on_frame_heard(meta);
          });
        }
      }
      // 2. Monitor-mode APs overhear the BA (§3.2.1).
      for (WifiDevice* m : ctx_.devices()) {
        if (m == this || !m->is_ap() || !m->monitor_enabled()) continue;
        if (m->channel() != cfg_.channel) continue;
        phy::Csi mcsi;
        const double mesnr = effective_esnr_db(
            ex.peer, m->id(), phy::basic_mcs().modulation, ba_time, &mcsi);
        if (!rng_.bernoulli(em.delivery_probability(phy::basic_mcs(), mesnr,
                                                    kBlockAckBytes))) {
          continue;
        }
        RxMeta meta;
        meta.transmitter = ex.peer;
        meta.csi = mcsi;
        meta.addressed = false;
        ctx_.sched().schedule_at(deliver_at, [m, ba, meta]() {
          if (m->on_frame_heard) m->on_frame_heard(meta);
          if (m->on_overheard_block_ack) m->on_overheard_block_ack(ba, meta);
        });
      }
    }
    return;
  }

  // ---- Uplink: self (client) -> shared BSSID `ex.peer`. -------------------
  struct Decoder {
    WifiDevice* ap = nullptr;
    BlockAckInfo ba;
    bool addressed = false;   // AP-mode interface of our BSSID
    double rx_power_dbm = -200.0;  // power of ITS response at the client
    double response_delay_us = 0.0;
    phy::Csi csi;
  };
  std::vector<Decoder> decoders;
  for (WifiDevice* d : ctx_.devices()) {
    if (d == this || !d->is_ap()) continue;
    if (d->channel() != cfg_.channel || !d->can_receive(data_time)) continue;
    const bool addressed = d->bssid() == ex.peer;
    if (!addressed && !d->monitor_enabled()) continue;
    phy::Csi csi;
    const double esnr =
        effective_esnr_db(self_, d->id(), ex.mcs->modulation, data_time, &csi);
    Decoder dec;
    dec.ap = d;
    dec.addressed = addressed;
    dec.csi = csi;
    dec.ba.client = self_;
    dec.ba.addressed_ap = d->id();
    dec.ba.start_seq = ex.aggregate.front().seq;
    bool got_any = false;
    // One delivery event per (aggregate, decoder) with one shared meta —
    // see the downlink path for the order-equivalence argument.
    std::vector<std::pair<std::uint16_t, net::PacketPtr>> delivered;
    for (const Mpdu& m : ex.aggregate) {
      if (rng_.bernoulli(
              em.delivery_probability(*ex.mcs, esnr, m.pkt->size_bytes))) {
        dec.ba.bitmap.set(seq_distance(dec.ba.start_seq, m.seq));
        got_any = true;
        delivered.emplace_back(m.seq, m.pkt);
      }
    }
    if (!got_any) continue;
    auto meta = std::make_shared<const RxMeta>(
        RxMeta{self_, csi, addressed, ex.mcs->index});
    {
      WifiDevice* ap = d;
      ctx_.sched().schedule_at(
          deliver_at,
          [ap, stream = self_, batch = std::move(delivered), meta]() {
            for (const auto& [seq, pkt] : batch) {
              ap->deliver_upward(stream, seq, pkt, *meta);
            }
          });
    }
    // CSI report opportunity for every AP that decoded the frame.
    {
      WifiDevice* ap = d;
      ctx_.sched().schedule_at(deliver_at, [ap, meta]() {
        if (ap->on_frame_heard) ap->on_frame_heard(*meta);
      });
    }
    if (addressed) {
      // This AP will respond with a BA (HT-immediate with jitter, §5.3.2).
      dec.response_delay_us = rng_.uniform(0.0, cfg_.ack_jitter_us);
      dec.rx_power_dbm =
          ctx_.channel().downlink_rssi_dbm(d->id(), self_, ba_time);
      decoders.push_back(std::move(dec));
    }
  }

  if (decoders.empty()) return;  // nobody heard us: no BA

  // Multi-AP BA response contention at the client (Table 3 model): the
  // earliest responder wins unless another response overlaps in time with
  // comparable power, in which case the client decodes nothing.
  std::sort(decoders.begin(), decoders.end(),
            [](const Decoder& a, const Decoder& b) {
              return a.response_delay_us < b.response_delay_us;
            });
  const Decoder& winner = decoders.front();
  bool collision = false;
  for (std::size_t i = 1; i < decoders.size(); ++i) {
    const Decoder& other = decoders[i];
    if (other.response_delay_us - winner.response_delay_us <
            cfg_.ack_overlap_us &&
        other.rx_power_dbm > winner.rx_power_dbm - cfg_.ack_capture_db) {
      collision = true;
      break;
    }
  }
  if (collision) {
    ++stats_.ack_collisions;
    return;
  }
  // Client decodes the winner's BA subject to its downlink channel.
  phy::Csi ba_csi;
  const double ba_esnr =
      effective_esnr_db(winner.ap->id(), self_,
                        phy::basic_mcs().modulation, ba_time, &ba_csi);
  if (rng_.bernoulli(em.delivery_probability(phy::basic_mcs(), ba_esnr,
                                             kBlockAckBytes))) {
    ex.any_ba = true;
    ex.own_ba = true;
    ex.merged_ba = winner.ba;
  }
}

void WifiDevice::deliver_upward(net::NodeId stream, std::uint16_t seq,
                                net::PacketPtr pkt, const RxMeta& meta) {
  // Every decode at a receiving radio is an independent ledger instance:
  // several APs can decode the same uplink frame (the controller de-dupes),
  // and the health engine accounts each such copy separately.
  const bool fr = net::flight_recorded(pkt->type);
  if (health_ && fr) health_->packet_copies();
  if (recorder_ && fr) {
    recorder_->record(pkt->uid, ctx_.sched().now(), net::Hop::kMacRx, self_,
                      {{"stream", stream}, {"seq", seq}});
  }
  auto it = reorder_.find(stream);
  if (it == reorder_.end()) {
    auto deliver = [this, stream](net::PacketPtr p) {
      if (on_deliver) on_deliver(std::move(p), reorder_meta_[stream]);
    };
    it = reorder_
             .emplace(stream, std::make_unique<ReorderBuffer>(deliver))
             .first;
  }
  reorder_meta_[stream] = meta;
  ReorderBuffer& rb = *it->second;
  const std::uint64_t dups_before = rb.duplicates_dropped();
  rb.on_mpdu(seq, std::move(pkt), ctx_.sched().now());
  if (health_ && fr && rb.duplicates_dropped() > dups_before) {
    // Duplicate/stale discard inside the BA reorder window: a benign
    // termination of this receiver instance (the first copy was delivered).
    health_->packet_retired(rb.duplicates_dropped() - dups_before);
  }
}

void WifiDevice::complete_exchange() {
  prof::ScopedSection timer(prof_, p_exchange_);
  assert(in_flight_);
  if (!in_flight_->any_ba && cfg_.ba_completion_grace > Time::zero()) {
    // Hold the exchange open: a forwarded BA may still arrive over the
    // backhaul (§3.2.1).  finish via apply_external_block_ack() or timeout.
    in_flight_->completion_event = ctx_.sched().schedule(
        cfg_.ba_completion_grace, [this]() {
          PendingExchange ex = std::move(*in_flight_);
          in_flight_.reset();
          finish_exchange_with_ba(std::move(ex));
        });
    awaiting_external_ba_ = true;
    return;
  }
  PendingExchange ex = std::move(*in_flight_);
  in_flight_.reset();
  finish_exchange_with_ba(std::move(ex));
}

bool WifiDevice::apply_external_block_ack(const BlockAckInfo& ba) {
  if (!in_flight_ || !awaiting_external_ba_) return false;
  PendingExchange& ex = *in_flight_;
  if (ba.client != ex.merged_ba.client) return false;
  if (seq_distance(ex.merged_ba.start_seq, ba.start_seq) != 0 &&
      !ba.acks(ex.merged_ba.start_seq)) {
    // Bitmap does not cover this aggregate's window.
    return false;
  }
  ++stats_.block_acks_recovered;
  if (m_ba_rollups_) m_ba_rollups_->add();
  if (tracer_) {
    tracer_->instant("mac", "ba_rollup", ctx_.sched().now(),
                     static_cast<std::int64_t>(self_),
                     {{"client", static_cast<double>(ba.client)}});
  }
  ex.any_ba = true;
  ex.merged_ba.bitmap |= ba.bitmap;
  if (seq_distance(ex.merged_ba.start_seq, ba.start_seq) != 0) {
    // Align: rebuild bitmap relative to our start sequence.
    BlockAckInfo aligned = ex.merged_ba;
    aligned.bitmap.reset();
    for (std::size_t i = 0; i < kBaWindow; ++i) {
      const auto seq = static_cast<std::uint16_t>(
          (ex.merged_ba.start_seq + i) & (kSeqModulo - 1));
      if (ba.acks(seq)) aligned.bitmap.set(i);
    }
    ex.merged_ba = aligned;
  }
  // Complete immediately rather than waiting out the grace period.
  ctx_.sched().cancel(ex.completion_event);
  awaiting_external_ba_ = false;
  PendingExchange done = std::move(*in_flight_);
  in_flight_.reset();
  finish_exchange_with_ba(std::move(done));
  return true;
}

void WifiDevice::finish_exchange_with_ba(PendingExchange ex) {
  awaiting_external_ba_ = false;
  PeerState& st = peer_state(ex.peer);
  const auto attempted = static_cast<unsigned>(ex.aggregate.size());
  unsigned delivered = 0;
  std::vector<Mpdu> failed;
  if (ex.any_ba) {
    for (Mpdu& m : ex.aggregate) {
      if (ex.merged_ba.acks(m.seq)) {
        ++delivered;
        // The acked MPDU ends this transmitter's custody of the instance;
        // the receiving radio's decode already opened its own (packet_copies
        // in deliver_upward), so the ledger retires the transmit-side unit.
        if (health_ && net::flight_recorded(m.pkt->type)) {
          health_->packet_retired();
        }
        if (recorder_ && net::flight_recorded(m.pkt->type)) {
          recorder_->record(m.pkt->uid, ctx_.sched().now(), net::Hop::kMacAck,
                            self_, {{"peer", ex.peer}, {"seq", m.seq}});
        }
        if (causal_ && net::flight_recorded(m.pkt->type) &&
            causal_->sampled(m.pkt->uid)) {
          causal_->annotate("mac.ack",
                            {{"uid", static_cast<std::int64_t>(m.pkt->uid)},
                             {"dev", self_},
                             {"peer", ex.peer}});
        }
      } else {
        failed.push_back(std::move(m));
      }
    }
    cw_ = cfg_.airtime.cw_min;
  } else {
    ++stats_.block_acks_lost;
    failed = std::move(ex.aggregate);
    cw_ = std::min(cfg_.airtime.cw_max, cw_ * 2 + 1);
  }
  stats_.mpdus_delivered += delivered;

  // Failed MPDUs re-enter at the head of the queue, oldest first, unless
  // they exhausted the retry budget or the peer was quenched mid-flight.
  const bool quench = st.quench_pending;
  st.quench_pending = false;
  for (auto it = failed.rbegin(); it != failed.rend(); ++it) {
    Mpdu& m = *it;
    if (quench || ++m.retries > cfg_.retry_limit) {
      ++stats_.mpdus_dropped;
      if (health_ && net::flight_recorded(m.pkt->type)) {
        health_->packet_dropped();
      }
      if (recorder_ && net::flight_recorded(m.pkt->type)) {
        recorder_->drop(m.pkt->uid, ctx_.sched().now(), net::Hop::kMacDrop,
                        self_,
                        quench ? net::DropCause::kQuench
                               : net::DropCause::kRetryLimit,
                        {{"peer", ex.peer},
                         {"seq", m.seq},
                         {"retries", m.retries}});
      }
      if (on_mpdu_dropped) on_mpdu_dropped(ex.peer, m.pkt);
      continue;
    }
    if (recorder_ && net::flight_recorded(m.pkt->type)) {
      recorder_->record(m.pkt->uid, ctx_.sched().now(), net::Hop::kMacRequeue,
                        self_,
                        {{"peer", ex.peer},
                         {"seq", m.seq},
                         {"retries", m.retries}});
    }
    if (causal_ && net::flight_recorded(m.pkt->type) &&
        causal_->sampled(m.pkt->uid)) {
      causal_->annotate("mac.requeue",
                        {{"uid", static_cast<std::int64_t>(m.pkt->uid)},
                         {"dev", self_},
                         {"retries", static_cast<std::int64_t>(m.retries)}});
    }
    st.queue.push_front(std::move(m));
  }

  st.rate_control->report(*ex.mcs, attempted, delivered, ctx_.sched().now());
  if (on_data_exchange) {
    on_data_exchange(ex.peer, *ex.mcs, attempted, delivered,
                     ctx_.sched().now());
  }
  if (st.refill && st.queue.size() < cfg_.hw_queue_limit) {
    ctx_.sched().schedule(Time::zero(), st.refill);
  }
  maybe_start_tx();
}

// ---------------------------------------------------------------------------
// Management path (beacons, association, null keepalives)
// ---------------------------------------------------------------------------

void WifiDevice::send_management(net::NodeId peer, net::PacketPtr pkt,
                                 std::function<void(bool)> done) {
  mgmt_queue_.push_back(MgmtTx{peer, std::move(pkt), std::move(done), 0});
  maybe_start_tx();
}

void WifiDevice::start_mgmt_tx() {
  assert(!mgmt_queue_.empty());
  mgmt_in_flight_ = true;
  const MgmtTx& tx = mgmt_queue_.front();
  const Time duration = airtime_.single_frame_duration(phy::basic_mcs(),
                                                       tx.pkt->size_bytes);
  const auto slots =
      static_cast<unsigned>(rng_.uniform_int(0, cfg_.airtime.cw_min));
  ctx_.medium().request(self_, duration, slots,
                        [this]() { run_mgmt_exchange(); });
}

void WifiDevice::run_mgmt_exchange() {
  assert(!mgmt_queue_.empty());
  MgmtTx tx = mgmt_queue_.front();
  const Time now = ctx_.sched().now();
  const Time duration = airtime_.single_frame_duration(phy::basic_mcs(),
                                                       tx.pkt->size_bytes);
  const Time data_time = now + duration * 0.5;
  const phy::ErrorModel& em = ctx_.error_model();
  if (!cfg_.is_ap) last_uplink_tx_ = now;
  if (m_airtime_ns_) {
    const auto ns = static_cast<std::uint64_t>(duration.to_ns());
    m_airtime_ns_->add(ns);
    m_airtime_total_ns_->add(ns);
  }

  if (tx.peer == net::kBroadcast) {
    // Beacon-style: every device that can decode it receives it; no ACK.
    for (WifiDevice* d : ctx_.devices()) {
      if (d == this) continue;
      if (d->is_ap() == cfg_.is_ap) continue;  // AP beacons target clients
      if (d->channel() != cfg_.channel || !d->can_receive(data_time)) continue;
      phy::Csi csi;
      const double esnr = effective_esnr_db(
          self_, d->id(), phy::basic_mcs().modulation, data_time, &csi);
      if (!rng_.bernoulli(em.delivery_probability(
              phy::basic_mcs(), esnr, tx.pkt->size_bytes))) {
        continue;
      }
      RxMeta meta;
      meta.transmitter = self_;
      meta.csi = csi;
      meta.addressed = false;
      ctx_.sched().schedule_at(now + duration, [d, pkt = tx.pkt, meta]() {
        if (d->on_management) d->on_management(pkt, meta);
      });
    }
    ctx_.sched().schedule(duration, [this]() {
      mgmt_queue_.pop_front();
      mgmt_in_flight_ = false;
      maybe_start_tx();
    });
    return;
  }

  // Unicast management: decoded by the addressed device(s) — for a client
  // talking to a shared BSSID, that is every AP-mode radio of the BSSID —
  // and overheard by monitors.  ACKed by decoders (with the same multi-AP
  // response contention as data BAs).
  struct Responder {
    WifiDevice* dev;
    double delay_us;
    double power_dbm;
  };
  std::vector<Responder> responders;
  for (WifiDevice* d : ctx_.devices()) {
    if (d == this) continue;
    if (d->channel() != cfg_.channel || !d->can_receive(data_time)) continue;
    // A client can address a management frame either to a BSSID (all
    // AP-mode radios of that BSSID hear it) or to one physical AP (the
    // association handshake engages a single AP even in a shared-BSSID
    // network).
    const bool addressed =
        cfg_.is_ap ? d->id() == tx.peer
                   : (d->is_ap() &&
                      (d->bssid() == tx.peer || d->id() == tx.peer));
    const bool monitor = !cfg_.is_ap && d->is_ap() && d->monitor_enabled();
    if (!addressed && !monitor) continue;
    phy::Csi csi;
    const double esnr = effective_esnr_db(
        self_, d->id(), phy::basic_mcs().modulation, data_time, &csi);
    if (!rng_.bernoulli(em.delivery_probability(phy::basic_mcs(), esnr,
                                                tx.pkt->size_bytes))) {
      continue;
    }
    RxMeta meta;
    meta.transmitter = self_;
    meta.csi = csi;
    meta.addressed = addressed;
    ctx_.sched().schedule_at(now + duration, [d, pkt = tx.pkt, meta,
                                              from_client = !cfg_.is_ap]() {
      if (meta.addressed && d->on_management) d->on_management(pkt, meta);
      if (from_client && d->on_frame_heard) d->on_frame_heard(meta);
    });
    if (addressed) {
      Responder r;
      r.dev = d;
      r.delay_us = rng_.uniform(0.0, cfg_.ack_jitter_us);
      r.power_dbm = d->is_ap()
                        ? ctx_.channel().downlink_rssi_dbm(d->id(), self_, now)
                        : ctx_.channel().uplink_rssi_dbm(self_, d->id(), now);
      responders.push_back(r);
    }
  }

  bool acked = false;
  if (!responders.empty()) {
    std::sort(responders.begin(), responders.end(),
              [](const Responder& a, const Responder& b) {
                return a.delay_us < b.delay_us;
              });
    bool collision = false;
    for (std::size_t i = 1; i < responders.size(); ++i) {
      if (responders[i].delay_us - responders[0].delay_us <
              cfg_.ack_overlap_us &&
          responders[i].power_dbm >
              responders[0].power_dbm - cfg_.ack_capture_db) {
        collision = true;
        break;
      }
    }
    if (collision) {
      ++stats_.ack_collisions;
    } else {
      const WifiDevice* winner = responders.front().dev;
      phy::Csi ack_csi;
      const double ack_esnr = effective_esnr_db(
          winner->id(), self_, phy::basic_mcs().modulation, now + duration,
          &ack_csi);
      acked = rng_.bernoulli(
          em.delivery_probability(phy::basic_mcs(), ack_esnr, 14));
    }
  }

  ctx_.sched().schedule(duration, [this, acked]() {
    MgmtTx& front = mgmt_queue_.front();
    if (acked || front.peer == net::kBroadcast) {
      auto done = std::move(front.done);
      mgmt_queue_.pop_front();
      mgmt_in_flight_ = false;
      if (done) done(true);
    } else if (++front.attempts >= kMgmtRetryLimit) {
      auto done = std::move(front.done);
      mgmt_queue_.pop_front();
      mgmt_in_flight_ = false;
      if (done) done(false);
    } else {
      mgmt_in_flight_ = false;  // retry via the normal path
    }
    maybe_start_tx();
  });
}

}  // namespace wgtt::mac
