#include "mac/medium.h"

#include <algorithm>
#include <cassert>

#include "util/units.h"

namespace wgtt::mac {

Medium::Medium(sim::Scheduler& sched, const channel::ChannelModel& channel,
               MediumConfig cfg)
    : sched_(sched), channel_(channel), cfg_(cfg) {}

void Medium::attach(net::NodeId dev, double tx_power_dbm, unsigned channel) {
  tx_power_[dev] = tx_power_dbm;
  channels_[dev] = channel;
}

void Medium::set_channel(net::NodeId dev, unsigned channel) {
  channels_[dev] = channel;
}

unsigned Medium::channel_of(net::NodeId dev) const {
  auto it = channels_.find(dev);
  return it == channels_.end() ? 11 : it->second;
}

double Medium::tx_power_dbm(net::NodeId dev) const {
  auto it = tx_power_.find(dev);
  assert(it != tx_power_.end());
  return it->second;
}

void Medium::prune_expired() {
  const Time now = sched_.now();
  std::erase_if(active_, [now](const ActiveTx& tx) { return tx.end <= now; });
}

Time Medium::audible_busy_until(net::NodeId dev) const {
  const Time now = sched_.now();
  Time until = Time::zero();
  const unsigned ch = channel_of(dev);
  for (const ActiveTx& tx : active_) {
    if (tx.end <= now || tx.dev == dev) continue;
    if (channel_of(tx.dev) != ch) continue;  // orthogonal channel
    const double rx_dbm = tx_power_dbm(tx.dev) +
                          channel_.path_gain_db(tx.dev, dev, now);
    if (rx_dbm >= cfg_.cs_threshold_dbm) until = std::max(until, tx.end);
  }
  return until;
}

bool Medium::busy_at(net::NodeId dev) const {
  return audible_busy_until(dev) > sched_.now();
}

void Medium::request(net::NodeId dev, Time duration, unsigned backoff_slots,
                     std::function<void()> on_grant) {
  attempt(dev, duration, backoff_slots, std::move(on_grant));
}

void Medium::attempt(net::NodeId dev, Time duration, unsigned backoff_slots,
                     std::function<void()> on_grant) {
  prune_expired();
  const Time busy_until = audible_busy_until(dev);
  const Time now = sched_.now();
  const Time contention =
      cfg_.difs + Time::ns(cfg_.slot.to_ns() *
                           static_cast<std::int64_t>(backoff_slots));
  if (busy_until > now) {
    // Defer: re-attempt once the audible transmission ends, then re-contend.
    sched_.schedule_at(busy_until + contention,
                       [this, dev, duration, backoff_slots,
                        on_grant = std::move(on_grant)]() mutable {
                         attempt(dev, duration, backoff_slots,
                                 std::move(on_grant));
                       });
    return;
  }
  // Idle now: wait out DIFS + backoff, then check again (someone may have
  // started in the meantime — if so we defer; if two devices fire in the
  // same instant they collide, as in reality).
  sched_.schedule(contention, [this, dev, duration,
                               on_grant = std::move(on_grant)]() mutable {
    prune_expired();
    const Time busy2 = audible_busy_until(dev);
    if (busy2 > sched_.now()) {
      // Lost the race; re-contend with a fresh single-slot draw folded in.
      attempt(dev, duration, 1, std::move(on_grant));
      return;
    }
    active_.push_back(ActiveTx{dev, sched_.now() + duration});
    ++grants_;
    occupied_total_ += duration;
    on_grant();
  });
}

double Medium::interference_mw_at(net::NodeId receiver,
                                  net::NodeId exclude_tx) const {
  const Time now = sched_.now();
  double mw = 0.0;
  const unsigned ch = channel_of(receiver);
  for (const ActiveTx& tx : active_) {
    if (tx.end <= now || tx.dev == exclude_tx || tx.dev == receiver) continue;
    if (channel_of(tx.dev) != ch) continue;  // orthogonal channel
    const double rx_dbm = tx_power_dbm(tx.dev) +
                          channel_.path_gain_db(tx.dev, receiver, now);
    mw += dbm_to_mw(rx_dbm);
  }
  return mw;
}

double Medium::utilization() const {
  const Time now = sched_.now();
  if (now <= Time::zero()) return 0.0;
  return std::min(1.0, occupied_total_ / now);
}

}  // namespace wgtt::mac
