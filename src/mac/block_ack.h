// Block acknowledgement machinery (802.11e/n).
//
// Transmit side: BlockAckInfo is the compressed-BA bitmap the receiver
// returns; WGTT's Block ACK forwarding (§3.2.1) ships exactly this struct
// across the Ethernet backhaul when a monitor-mode AP overhears it.
//
// Receive side: ReorderBuffer implements the 64-frame BA reordering window
// that turns out-of-order MPDU receptions back into an in-order MSDU stream
// (with a gap timeout, since a transmitter that drops an MPDU at its retry
// limit would otherwise stall the window forever).
#pragma once

#include <bitset>
#include <cstdint>
#include <functional>
#include <map>

#include "net/packet.h"
#include "util/time.h"

namespace wgtt::mac {

constexpr std::size_t kBaWindow = 64;
constexpr std::uint16_t kSeqModulo = 4096;  // 12-bit 802.11 sequence space

/// Distance from a to b in 12-bit sequence space.
inline std::uint16_t seq_distance(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::uint16_t>((b - a) & (kSeqModulo - 1));
}

struct BlockAckInfo {
  net::NodeId client = 0;       // layer-2 source of the BA (the client)
  net::NodeId addressed_ap = 0; // AP the BA was sent to
  std::uint16_t start_seq = 0;  // first sequence covered by the bitmap
  std::bitset<kBaWindow> bitmap;

  bool acks(std::uint16_t seq) const {
    const std::uint16_t d = seq_distance(start_seq, seq);
    return d < kBaWindow && bitmap.test(d);
  }
};

/// Receiver-side reordering for one (transmitter, TID) agreement.
class ReorderBuffer {
 public:
  using DeliverFn = std::function<void(net::PacketPtr)>;

  explicit ReorderBuffer(DeliverFn deliver, Time gap_timeout = Time::ms(10));

  /// Accept an MPDU with its 12-bit sequence number at time `now`.
  /// Duplicates and stale sequences are dropped.  In-order frames (and any
  /// buffered successors they release) are delivered immediately.
  void on_mpdu(std::uint16_t seq, net::PacketPtr pkt, Time now);

  /// Flush frames whose gap has outlived the timeout; call periodically or
  /// before reading statistics.  Returns the number of frames released.
  std::size_t flush_expired(Time now);

  /// Force-release everything buffered (e.g. teardown).
  void flush_all();

  std::uint16_t window_start() const { return window_start_; }
  std::size_t buffered() const { return buffered_.size(); }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t duplicates_dropped() const { return duplicates_; }

 private:
  void release_in_order();

  DeliverFn deliver_;
  Time gap_timeout_;
  std::uint16_t window_start_ = 0;
  bool started_ = false;
  Time oldest_hole_since_ = Time::zero();
  std::map<std::uint16_t, net::PacketPtr> buffered_;  // keyed by distance-adjusted seq
  std::uint64_t delivered_ = 0;
  std::uint64_t duplicates_ = 0;
};

}  // namespace wgtt::mac
