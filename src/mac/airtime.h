// 802.11n airtime accounting.
//
// Frame aggregation exists because per-frame overhead (preamble, DIFS,
// backoff, block ACK) is fixed while data rates climb (paper §1); the
// numbers here make that trade-off concrete, and every microsecond of
// simulated medium occupancy comes from these functions.
#pragma once

#include <cstddef>

#include "phy/mcs.h"
#include "util/time.h"

namespace wgtt::mac {

struct AirtimeConfig {
  Time slot = Time::us(9);
  Time sifs = Time::us(16);
  Time difs = Time::us(34);          // SIFS + 2 slots
  Time ht_preamble = Time::us(36);   // L-preamble + HT-SIG + HT-preamble
  std::size_t mac_header_bytes = 26; // QoS data header
  std::size_t fcs_bytes = 4;
  std::size_t ampdu_delimiter_bytes = 4;
  std::size_t block_ack_bytes = 32;  // compressed BA frame body
  unsigned cw_min = 15;
  unsigned cw_max = 1023;
  Time max_ampdu_duration = Time::ms(4);
  std::size_t max_ampdu_frames = 64;
  bool short_gi = false;
};

class AirtimeCalculator {
 public:
  explicit AirtimeCalculator(AirtimeConfig cfg = {});

  const AirtimeConfig& config() const { return cfg_; }

  /// On-air duration of the payload bits of one MPDU inside an A-MPDU
  /// (delimiter + MAC header + MSDU + FCS, padded to 4 bytes).
  Time mpdu_duration(const phy::McsInfo& mcs, std::size_t msdu_bytes) const;

  /// Total duration of a data exchange: preamble + A-MPDU + SIFS + BA.
  Time exchange_duration(const phy::McsInfo& mcs, std::size_t mpdu_count,
                         std::size_t total_msdu_bytes) const;

  /// Duration of a single unaggregated frame (mgmt, beacon) + its ACK.
  Time single_frame_duration(const phy::McsInfo& mcs,
                             std::size_t body_bytes) const;

  /// Block ACK frame duration at the basic rate.
  Time block_ack_duration() const;

  /// How many MPDUs of `msdu_bytes` fit under the A-MPDU duration and
  /// frame-count caps at this MCS (always at least 1).
  std::size_t max_mpdus_in_ampdu(const phy::McsInfo& mcs,
                                 std::size_t msdu_bytes) const;

  /// Random-backoff duration for the given contention-window value.
  Time backoff_duration(unsigned cw, unsigned draw) const;

 private:
  Time bits_duration(const phy::McsInfo& mcs, std::size_t bits) const;
  AirtimeConfig cfg_;
};

}  // namespace wgtt::mac
