#include "mac/ampdu.h"

namespace wgtt::mac {

std::vector<Mpdu> AmpduAggregator::build(std::deque<Mpdu>& queue,
                                         const phy::McsInfo& mcs,
                                         std::size_t max_frames) const {
  std::vector<Mpdu> agg;
  if (queue.empty()) return agg;

  const AirtimeConfig& cfg = airtime_.config();
  const std::uint16_t first_seq = queue.front().seq;
  Time used = Time::zero();

  while (!queue.empty() && agg.size() < cfg.max_ampdu_frames &&
         agg.size() < max_frames) {
    const Mpdu& head = queue.front();
    if (seq_distance(first_seq, head.seq) >= kBaWindow) break;
    const Time d = airtime_.mpdu_duration(mcs, head.pkt->size_bytes);
    if (!agg.empty() && used + d > cfg.max_ampdu_duration) break;
    used += d;
    agg.push_back(queue.front());
    queue.pop_front();
  }
  return agg;
}

std::size_t AmpduAggregator::total_bytes(const std::vector<Mpdu>& agg) {
  std::size_t total = 0;
  for (const Mpdu& m : agg) total += m.pkt->size_bytes;
  return total;
}

}  // namespace wgtt::mac
