#include "mac/block_ack.h"

#include <algorithm>

namespace wgtt::mac {

ReorderBuffer::ReorderBuffer(DeliverFn deliver, Time gap_timeout)
    : deliver_(std::move(deliver)), gap_timeout_(gap_timeout) {}

void ReorderBuffer::on_mpdu(std::uint16_t seq, net::PacketPtr pkt, Time now) {
  seq = static_cast<std::uint16_t>(seq & (kSeqModulo - 1));
  if (!started_) {
    started_ = true;
    window_start_ = seq;
  }
  const std::uint16_t d = seq_distance(window_start_, seq);
  if (d >= kSeqModulo / 2) {
    // Behind the window: an old retransmission we already delivered.
    ++duplicates_;
    return;
  }
  if (d >= kBaWindow) {
    // The transmitter has moved on; slide the window so `seq` is its last
    // slot, releasing everything that falls out (802.11 window jump).
    const std::uint16_t new_start = static_cast<std::uint16_t>(
        (seq - (kBaWindow - 1)) & (kSeqModulo - 1));
    while (window_start_ != new_start) {
      auto it = buffered_.find(window_start_);
      if (it != buffered_.end()) {
        deliver_(it->second);
        ++delivered_;
        buffered_.erase(it);
      }
      window_start_ = static_cast<std::uint16_t>((window_start_ + 1) &
                                                 (kSeqModulo - 1));
    }
  }
  if (buffered_.count(seq) != 0) {
    ++duplicates_;
    return;
  }
  const bool had_buffered = !buffered_.empty();
  buffered_.emplace(seq, std::move(pkt));
  release_in_order();
  // A gap exists iff frames remain buffered; (re)arm the hole timer when the
  // buffer transitions from empty to non-empty.
  if (!buffered_.empty() && !had_buffered) oldest_hole_since_ = now;
}

void ReorderBuffer::release_in_order() {
  for (auto it = buffered_.find(window_start_); it != buffered_.end();
       it = buffered_.find(window_start_)) {
    deliver_(it->second);
    ++delivered_;
    buffered_.erase(it);
    window_start_ =
        static_cast<std::uint16_t>((window_start_ + 1) & (kSeqModulo - 1));
  }
}

std::size_t ReorderBuffer::flush_expired(Time now) {
  if (buffered_.empty()) return 0;
  if (now - oldest_hole_since_ < gap_timeout_) return 0;
  // Skip the hole: advance the window to the earliest buffered frame.
  auto earliest = buffered_.begin();
  std::uint16_t best_d = seq_distance(window_start_, earliest->first);
  for (auto it = buffered_.begin(); it != buffered_.end(); ++it) {
    const std::uint16_t d = seq_distance(window_start_, it->first);
    if (d < best_d) {
      best_d = d;
      earliest = it;
    }
  }
  const std::uint64_t before = delivered_;
  window_start_ = earliest->first;
  release_in_order();
  if (!buffered_.empty()) oldest_hole_since_ = now;
  return delivered_ - before;
}

void ReorderBuffer::flush_all() {
  while (!buffered_.empty()) {
    auto earliest = buffered_.begin();
    std::uint16_t best_d = seq_distance(window_start_, earliest->first);
    for (auto it = buffered_.begin(); it != buffered_.end(); ++it) {
      const std::uint16_t d = seq_distance(window_start_, it->first);
      if (d < best_d) {
        best_d = d;
        earliest = it;
      }
    }
    window_start_ = earliest->first;
    release_in_order();
  }
}

}  // namespace wgtt::mac
