// A-MPDU construction.
//
// Pulls MPDUs off a per-peer FIFO into one aggregate bounded by (a) the
// 64-frame cap, (b) the 4 ms duration cap at the chosen MCS, and (c) the
// block-ACK window: every subframe must sit within 64 sequence numbers of
// the first, or the receiver's scoreboard could not represent it.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "mac/airtime.h"
#include "mac/block_ack.h"
#include "net/packet.h"
#include "phy/mcs.h"

namespace wgtt::mac {

struct Mpdu {
  net::PacketPtr pkt;
  std::uint16_t seq = 0;
  unsigned retries = 0;
};

class AmpduAggregator {
 public:
  explicit AmpduAggregator(const AirtimeCalculator& airtime)
      : airtime_(airtime) {}

  /// Move up to the allowed number of MPDUs from the head of `queue` into
  /// the returned aggregate.  Returns at least one MPDU if the queue is
  /// non-empty.  `max_frames` further caps the aggregate (rate-sampling
  /// probes are kept short so a failed probe wastes little airtime).
  std::vector<Mpdu> build(std::deque<Mpdu>& queue, const phy::McsInfo& mcs,
                          std::size_t max_frames = SIZE_MAX) const;

  /// Total MSDU payload bytes across an aggregate.
  static std::size_t total_bytes(const std::vector<Mpdu>& agg);

 private:
  const AirtimeCalculator& airtime_;
};

}  // namespace wgtt::mac
