#include "mac/airtime.h"

#include <algorithm>
#include <cmath>

namespace wgtt::mac {

AirtimeCalculator::AirtimeCalculator(AirtimeConfig cfg) : cfg_(cfg) {}

Time AirtimeCalculator::bits_duration(const phy::McsInfo& mcs,
                                      std::size_t bits) const {
  const double rate_bps = mcs.rate_bps(cfg_.short_gi);
  // Round up to whole OFDM symbols (4 us long GI / 3.6 us short GI).
  const double symbol_us = cfg_.short_gi ? 3.6 : 4.0;
  const double bits_per_symbol = rate_bps * symbol_us * 1e-6;
  const double symbols = std::ceil(static_cast<double>(bits) / bits_per_symbol);
  return Time::us(symbols * symbol_us);
}

Time AirtimeCalculator::mpdu_duration(const phy::McsInfo& mcs,
                                      std::size_t msdu_bytes) const {
  std::size_t bytes = cfg_.ampdu_delimiter_bytes + cfg_.mac_header_bytes +
                      msdu_bytes + cfg_.fcs_bytes;
  bytes = (bytes + 3) & ~std::size_t{3};  // pad to 4-byte boundary
  return bits_duration(mcs, bytes * 8);
}

Time AirtimeCalculator::exchange_duration(const phy::McsInfo& mcs,
                                          std::size_t mpdu_count,
                                          std::size_t total_msdu_bytes) const {
  const std::size_t per_mpdu_overhead = cfg_.ampdu_delimiter_bytes +
                                        cfg_.mac_header_bytes + cfg_.fcs_bytes;
  std::size_t bytes = total_msdu_bytes + mpdu_count * per_mpdu_overhead;
  bytes = (bytes + 3) & ~std::size_t{3};
  return cfg_.ht_preamble + bits_duration(mcs, bytes * 8) + cfg_.sifs +
         block_ack_duration();
}

Time AirtimeCalculator::single_frame_duration(const phy::McsInfo& mcs,
                                              std::size_t body_bytes) const {
  const std::size_t bytes = cfg_.mac_header_bytes + body_bytes + cfg_.fcs_bytes;
  // Frame + SIFS + ACK (14-byte ACK at the basic rate).
  return cfg_.ht_preamble + bits_duration(mcs, bytes * 8) + cfg_.sifs +
         cfg_.ht_preamble + bits_duration(phy::basic_mcs(), 14 * 8);
}

Time AirtimeCalculator::block_ack_duration() const {
  return cfg_.ht_preamble +
         bits_duration(phy::basic_mcs(), cfg_.block_ack_bytes * 8);
}

std::size_t AirtimeCalculator::max_mpdus_in_ampdu(
    const phy::McsInfo& mcs, std::size_t msdu_bytes) const {
  const Time one = mpdu_duration(mcs, msdu_bytes);
  if (one <= Time::zero()) return cfg_.max_ampdu_frames;
  auto by_duration = static_cast<std::size_t>(
      cfg_.max_ampdu_duration.to_ns() / std::max<std::int64_t>(one.to_ns(), 1));
  return std::clamp<std::size_t>(by_duration, 1, cfg_.max_ampdu_frames);
}

Time AirtimeCalculator::backoff_duration(unsigned cw, unsigned draw) const {
  return Time::ns(cfg_.slot.to_ns() * static_cast<std::int64_t>(draw % (cw + 1)));
}

}  // namespace wgtt::mac
