// The shared wireless medium (single channel — paper §4: channel 11).
//
// Event-driven CSMA/CA abstraction at A-MPDU-exchange granularity: a device
// requests the medium for the full duration of its exchange; the medium
// defers the grant while any transmission audible at the requester (above
// the carrier-sense threshold) is active, then applies DIFS + the caller's
// backoff.  Devices that cannot hear each other transmit concurrently, and
// their mutual interference raises the effective noise floor at receivers —
// this is how hidden-terminal loss and spatial reuse both emerge.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "channel/channel_model.h"
#include "net/packet.h"
#include "sim/scheduler.h"
#include "util/time.h"

namespace wgtt::mac {

struct MediumConfig {
  double cs_threshold_dbm = -82.0;  // preamble-detect / energy-detect floor
  Time difs = Time::us(34);
  Time slot = Time::us(9);
};

class Medium {
 public:
  Medium(sim::Scheduler& sched, const channel::ChannelModel& channel,
         MediumConfig cfg = {});

  /// Register a transmitter with its output power on a Wi-Fi channel.
  /// Devices on different channels neither carrier-sense nor interfere
  /// with one another (adjacent-channel leakage is ignored).
  void attach(net::NodeId dev, double tx_power_dbm, unsigned channel = 11);

  /// Retune a device (e.g. a client following its AP across channels).
  void set_channel(net::NodeId dev, unsigned channel);
  unsigned channel_of(net::NodeId dev) const;

  /// Request an exchange of `duration` with `backoff_slots` of random
  /// backoff.  `on_grant` runs when the device acquires the medium; the
  /// occupancy is recorded for `duration` starting at that instant.
  void request(net::NodeId dev, Time duration, unsigned backoff_slots,
               std::function<void()> on_grant);

  /// Interference power (mW) at `receiver` summed over transmissions active
  /// at the current instant, excluding `exclude_tx`.
  double interference_mw_at(net::NodeId receiver, net::NodeId exclude_tx) const;

  /// True if any transmission audible at `dev` is currently active.
  bool busy_at(net::NodeId dev) const;

  double tx_power_dbm(net::NodeId dev) const;

  /// Fraction of elapsed simulation time the medium carried at least one
  /// transmission (diagnostics; union not double-counted only approximately
  /// since concurrent spatial reuse is rare in the picocell deployment).
  double utilization() const;
  std::uint64_t grants() const { return grants_; }

 private:
  struct ActiveTx {
    net::NodeId dev;
    Time end;
  };

  void attempt(net::NodeId dev, Time duration, unsigned backoff_slots,
               std::function<void()> on_grant);
  /// Latest end time of transmissions audible at `dev` (zero if idle).
  Time audible_busy_until(net::NodeId dev) const;
  void prune_expired();

  sim::Scheduler& sched_;
  const channel::ChannelModel& channel_;
  MediumConfig cfg_;
  std::map<net::NodeId, double> tx_power_;
  std::map<net::NodeId, unsigned> channels_;
  std::vector<ActiveTx> active_;
  std::uint64_t grants_ = 0;
  Time occupied_total_ = Time::zero();
};

}  // namespace wgtt::mac
