// Per-radio 802.11n MAC state machine.
//
// Each AP and each client owns one WifiDevice.  Devices share a Medium
// (CSMA/CA, interference) and a ChannelModel (per-link CSI).  A device:
//
//  * queues MPDUs per peer and transmits them as A-MPDU + Block ACK
//    exchanges with Minstrel-style rate adaptation and bounded retries;
//  * delivers received MPDUs in order through a per-stream BA reorder
//    buffer;
//  * in monitor mode (the WGTT AP's second virtual interface, §3.2.1)
//    overhears client frames it is not addressed by, surfacing CSI for the
//    controller's AP selection and Block ACKs for BA forwarding;
//  * models the multi-AP uplink of a shared-BSSID network: every AP that
//    decodes a client frame delivers it upward (the controller de-dupes),
//    and simultaneous BA responses from several APs can collide at the
//    client (paper §5.3.2 / Table 3).
//
// WGTT-specific integration points: enqueue() accepts an explicit 802.11
// sequence number so WGTT APs can reuse the controller's 12-bit cyclic
// packet index as the MPDU sequence — this is what makes block-ACK state
// meaningful across an AP switch — and apply_external_block_ack() merges a
// BA forwarded over the backhaul into an exchange still waiting for its
// completion (the ath_tx_complete_aggr() path of §3.2.1).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "channel/channel_model.h"
#include "mac/airtime.h"
#include "mac/ampdu.h"
#include "mac/block_ack.h"
#include "mac/medium.h"
#include "net/flight_recorder.h"
#include "net/packet.h"
#include "phy/error_model.h"
#include "phy/rate_control.h"
#include "sim/scheduler.h"
#include "util/causal.h"
#include "util/health.h"
#include "util/metrics.h"
#include "util/profiler.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/trace.h"

namespace wgtt::mac {

class WifiDevice;

/// Shared wiring for all radios of one scenario.
class MacContext {
 public:
  MacContext(sim::Scheduler& sched, Medium& medium,
             const channel::ChannelModel& channel,
             const phy::ErrorModel& error_model, Rng rng);

  void register_device(WifiDevice* dev);
  WifiDevice* device(net::NodeId id) const;
  const std::vector<WifiDevice*>& devices() const { return devices_; }

  sim::Scheduler& sched() { return sched_; }
  Medium& medium() { return medium_; }
  const channel::ChannelModel& channel() const { return channel_; }
  const phy::ErrorModel& error_model() const { return error_model_; }
  Rng fork_rng(std::uint64_t tag) { return rng_.fork(tag); }

 private:
  sim::Scheduler& sched_;
  Medium& medium_;
  const channel::ChannelModel& channel_;
  const phy::ErrorModel& error_model_;
  Rng rng_;
  std::map<net::NodeId, WifiDevice*> by_id_;
  std::vector<WifiDevice*> devices_;
};

struct WifiDeviceConfig {
  bool is_ap = false;
  /// Wi-Fi channel this radio operates on.  The WGTT prototype is
  /// single-channel (paper §4); the multi-channel extension of §7 assigns
  /// alternating channels per AP and retunes clients on switch.
  unsigned channel = 11;
  /// BSSID this radio belongs to.  All WGTT APs share one BSSID so they
  /// appear as a single AP to clients (§4.3); baseline APs use their own id.
  net::NodeId bssid = 0;
  bool monitor_mode = false;
  unsigned retry_limit = 10;
  std::size_t hw_queue_limit = 32;  // NIC internal queue (paper Fig. 7)
  /// After a lost BA, wait this long for a backhaul-forwarded copy before
  /// declaring the aggregate unacknowledged (0 = process immediately).
  Time ba_completion_grace = Time::zero();
  /// Client-side: transmit a (CSI-bearing) null frame after this much uplink
  /// silence so APs keep hearing the client (0 = off).
  Time keepalive_interval = Time::zero();
  AirtimeConfig airtime;
  /// Multi-AP ACK-response contention model (paper §5.3.2 / Table 3): the
  /// TP-Link NIC issues HT-immediate BAs after a microsecond-scale backoff,
  /// and the client's receiver locks onto the earliest response; a later
  /// one only corrupts it if it starts inside the capture window with
  /// comparable power — which the parabolic side lobes make rare.
  double ack_jitter_us = 20.0;  // response start-time spread
  double ack_overlap_us = 0.3;  // starts closer than this can collide
  double ack_capture_db = 1.5;  // power margin below which capture fails
  /// Factory for the per-peer rate controller (default: Minstrel).
  std::function<std::unique_ptr<phy::RateControl>()> rate_control_factory;
};

struct RxMeta {
  net::NodeId transmitter = 0;
  phy::Csi csi;
  bool addressed = false;  // frame was addressed to this device
  unsigned mcs_index = 0;
};

struct DeviceStats {
  std::uint64_t mpdus_sent = 0;       // unique transmissions incl. retries
  std::uint64_t mpdus_delivered = 0;  // acknowledged
  std::uint64_t mpdus_dropped = 0;    // retry limit exceeded
  std::uint64_t aggregates_sent = 0;
  std::uint64_t block_acks_lost = 0;
  std::uint64_t block_acks_recovered = 0;  // via backhaul forwarding
  std::uint64_t ack_collisions = 0;        // multi-AP response collisions seen
  std::uint64_t uplink_frames_sent = 0;    // client-side: data frames + BAs + nulls
};

class WifiDevice {
 public:
  WifiDevice(MacContext& ctx, net::NodeId self, WifiDeviceConfig cfg);
  WifiDevice(const WifiDevice&) = delete;
  WifiDevice& operator=(const WifiDevice&) = delete;

  net::NodeId id() const { return self_; }
  bool is_ap() const { return cfg_.is_ap; }
  net::NodeId bssid() const { return cfg_.bssid; }
  void set_bssid(net::NodeId b) { cfg_.bssid = b; }
  unsigned channel() const { return cfg_.channel; }
  /// Retune to another channel; the radio is deaf for `retune_pause`.
  void set_channel(unsigned ch, Time retune_pause = Time::ms(3));
  /// True if the radio can decode a frame whose payload lands at `t`
  /// (same-channel gating is the caller's job; this covers retuning and a
  /// fault-injected crash).
  bool can_receive(Time t) const { return !down_ && t >= retuning_until_; }
  /// Fault injection: a crashed radio neither transmits nor receives.  Going
  /// down flushes every per-peer queue with the fault cause.
  void set_down(bool down);
  bool down() const { return down_; }
  bool monitor_enabled() const { return monitor_enabled_; }
  /// The paper disables the monitor interface on the currently-associated
  /// AP (its AP-mode interface already sees the client's frames).
  void set_monitor_enabled(bool on) { monitor_enabled_ = on; }

  // -- upper-layer callbacks ------------------------------------------------
  /// In-order MSDUs addressed to this device.
  std::function<void(net::PacketPtr, const RxMeta&)> on_deliver;
  /// Any client-originated frame this radio decoded (addressed or monitor):
  /// the CSI source for the WGTT controller.
  std::function<void(const RxMeta&)> on_frame_heard;
  /// A Block ACK overheard in monitor mode (input to BA forwarding).
  std::function<void(const BlockAckInfo&, const RxMeta&)> on_overheard_block_ack;
  /// Broadcast/management frame received (beacons, assoc frames).
  std::function<void(net::PacketPtr, const RxMeta&)> on_management;
  /// MPDU abandoned at the retry limit.
  std::function<void(net::NodeId peer, net::PacketPtr)> on_mpdu_dropped;
  /// Telemetry: fired after every data exchange this device initiated.
  std::function<void(net::NodeId peer, const phy::McsInfo&, unsigned attempted,
                     unsigned delivered, Time when)>
      on_data_exchange;

  // -- data path ------------------------------------------------------------
  /// Queue an MSDU for `peer`.  If `explicit_seq` is set it becomes the
  /// 802.11 sequence number (WGTT packet-index integration); otherwise the
  /// per-peer counter assigns one.  Returns false if the hardware queue for
  /// this peer is full.
  bool enqueue(net::NodeId peer, net::PacketPtr pkt,
               std::optional<std::uint16_t> explicit_seq = std::nullopt);
  std::size_t queue_depth(net::NodeId peer) const;
  bool has_room(net::NodeId peer) const;
  /// Drop all *queued* (not in-flight) MPDUs for `peer`; returns the count.
  /// `cause` labels the flight-recorder drop records (handover flush by
  /// default; fault_injected when a crash empties the radio).
  std::size_t flush_queue(net::NodeId peer,
                          net::DropCause cause = net::DropCause::kHandoverFlush);
  /// Callback invoked whenever the hardware queue for `peer` has room —
  /// upper queue stages use it to keep the NIC fed (pull model).
  void set_refill_handler(net::NodeId peer, std::function<void()> fn);

  /// Send an unaggregated management frame at the basic rate.  Unicast
  /// frames are acknowledged and retried (up to 7 attempts); `done(bool)`
  /// reports final success.  Broadcast (peer == kBroadcast) frames are
  /// fire-and-forget.
  void send_management(net::NodeId peer, net::PacketPtr pkt,
                       std::function<void(bool)> done = nullptr);

  // -- WGTT hooks -------------------------------------------------------
  /// Merge a backhaul-forwarded Block ACK into a pending exchange
  /// (§3.2.1: the ath_tx_status update path).  Returns true if it matched
  /// an exchange still awaiting completion.
  bool apply_external_block_ack(const BlockAckInfo& ba);

  /// Client-side: where keepalive null frames are addressed (the BSSID).
  void set_keepalive_peer(net::NodeId peer) { keepalive_peer_ = peer; }

  /// Channel-aware rate control hook: feed a fresh ESNR estimate for `peer`
  /// into its rate controller, if that controller is ESNR-driven (no-op for
  /// Minstrel radios).
  void update_peer_esnr(net::NodeId peer, double esnr_db, Time now);

  /// AP-side, WGTT overlap windows (start-first / bicast): while another AP
  /// is the active member of the shared BSSID, this radio's downlink frames
  /// to `peer` are delivered under this device's own id as the reorder
  /// stream instead of the BSSID.  The client then sees a second independent
  /// transmitter — as in a classic make-before-break double association —
  /// so the duplicate copies reach the IP layer (where dedup absorbs them)
  /// rather than being silently swallowed by the shared-BSSID BA reorder
  /// buffer, which holds the same index-derived sequence numbers.
  void set_shadow_stream(net::NodeId peer, bool on);
  bool shadow_stream(net::NodeId peer) const;

  const DeviceStats& stats() const { return stats_; }

 private:
  struct PeerState {
    std::deque<Mpdu> queue;
    std::uint16_t next_seq = 0;
    std::unique_ptr<phy::RateControl> rate_control;
    std::function<void()> refill;
    /// Set by flush_queue(): failures of the exchange already in flight are
    /// dropped rather than re-queued (the peer has been handed over).
    bool quench_pending = false;
    /// Overlap-window delivery under our own id instead of the shared BSSID
    /// (see set_shadow_stream()).
    bool shadow_stream = false;
  };
  struct PendingExchange {
    net::NodeId peer = 0;
    const phy::McsInfo* mcs = nullptr;
    std::vector<Mpdu> aggregate;
    BlockAckInfo merged_ba;   // union of own + forwarded BA info
    bool any_ba = false;      // some BA (own or forwarded) arrived
    bool own_ba = false;      // our radio decoded the BA itself
    sim::EventId completion_event;
  };
  struct MgmtTx {
    net::NodeId peer = 0;
    net::PacketPtr pkt;
    std::function<void(bool)> done;
    unsigned attempts = 0;
  };

  PeerState& peer_state(net::NodeId peer);
  void maybe_start_tx();
  void begin_exchange();
  void evaluate_receptions(PendingExchange& ex, Time data_time, Time ba_time);
  void complete_exchange();
  void finish_exchange_with_ba(PendingExchange ex);
  /// ESNR at `rx` for a frame from `tx` under current interference.
  double effective_esnr_db(net::NodeId tx_node, net::NodeId rx_node,
                           phy::Modulation mod, Time t, phy::Csi* csi_out);
  void start_mgmt_tx();
  void run_mgmt_exchange();
  /// Self-rescheduling housekeeping: reorder-gap flush + client keepalive.
  void periodic_tick();
  void deliver_upward(net::NodeId stream, std::uint16_t seq, net::PacketPtr pkt,
                      const RxMeta& meta);

  MacContext& ctx_;
  net::NodeId self_;
  WifiDeviceConfig cfg_;
  bool monitor_enabled_;
  AirtimeCalculator airtime_;
  AmpduAggregator aggregator_;
  Rng rng_;
  std::map<net::NodeId, PeerState> peers_;
  std::map<net::NodeId, std::unique_ptr<ReorderBuffer>> reorder_;  // by stream
  std::map<net::NodeId, RxMeta> reorder_meta_;
  std::optional<PendingExchange> in_flight_;
  bool tx_armed_ = false;           // medium request outstanding
  bool awaiting_external_ba_ = false;
  unsigned cw_;
  net::NodeId last_served_peer_ = 0;  // round-robin cursor
  Time retuning_until_ = Time::zero();
  bool down_ = false;  // fault-injected crash: radio silent both ways
  net::NodeId keepalive_peer_ = 0;
  std::deque<MgmtTx> mgmt_queue_;
  bool mgmt_in_flight_ = false;
  Time last_uplink_tx_ = Time::zero();
  DeviceStats stats_;
  // Instrumentation, cached from the context-current registry/tracer at
  // construction; null when off.
  metrics::Counter* m_airtime_ns_ = nullptr;        // this radio
  metrics::Counter* m_airtime_total_ns_ = nullptr;  // all radios of the sim
  metrics::Histogram* m_ampdu_mpdus_ = nullptr;
  metrics::Counter* m_ba_rollups_ = nullptr;
  metrics::Histogram* m_mcs_index_ = nullptr;
  metrics::Histogram* m_esnr_db_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
  prof::Profiler* prof_ = nullptr;
  prof::Section* p_exchange_ = nullptr;
  net::FlightRecorder* recorder_ = nullptr;
  obs::CausalTracer* causal_ = nullptr;
  obs::HealthEngine* health_ = nullptr;
};

}  // namespace wgtt::mac
