// TCP Reno (with NewReno-style partial-ack handling), simplified but
// phenomenologically faithful: slow start, congestion avoidance, triple-
// duplicate-ACK fast retransmit / fast recovery, and an RFC 6298-style
// retransmission timeout with exponential backoff and a 200 ms floor —
// the Linux minimum that produces the multi-second stalls the paper's
// Fig. 14 shows when Enhanced 802.11r strands a queue at a dead AP.
//
// The connection object holds both endpoints' state; the *network* between
// them is external: the owner wires `transmit_data` / `transmit_ack` into
// the simulated downlink/uplink paths and feeds arrivals back through
// on_network_data() / on_network_ack().
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "net/flight_recorder.h"
#include "net/packet.h"
#include "sim/scheduler.h"
#include "transport/udp_flow.h"  // IpIdAllocator
#include "util/causal.h"
#include "util/health.h"
#include "util/metrics.h"
#include "util/stats.h"

namespace wgtt::transport {

struct TcpConfig {
  std::size_t mss = 1448;
  std::size_t initial_cwnd_segments = 10;
  std::size_t receive_window_bytes = 256 * 1024;
  Time min_rto = Time::ms(200);
  Time max_rto = Time::sec(60);
  Time initial_rto = Time::sec(1);
  std::size_t ack_bytes = 52;  // 40 header + options
  Time throughput_bin = Time::ms(500);
};

struct TcpStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t dup_acks = 0;
};

class TcpConnection {
 public:
  TcpConnection(sim::Scheduler& sched, IpIdAllocator& ip_ids, TcpConfig cfg,
                std::uint32_t flow_id, net::NodeId sender,
                net::NodeId receiver);

  /// Outbound hooks (into the simulated network).
  std::function<void(net::PacketPtr)> transmit_data;  // sender side egress
  std::function<void(net::PacketPtr)> transmit_ack;   // receiver side egress
  /// In-order bytes handed to the receiving application.
  std::function<void(std::size_t bytes, Time when)> on_app_receive;

  /// Append bytes to the sender's stream (bulk sources call once with a
  /// huge count; request/response apps call per message).
  void app_send(std::size_t bytes);

  /// Network ingress.
  void on_network_data(const net::PacketPtr& pkt);  // at receiver
  void on_network_ack(const net::PacketPtr& pkt);   // at sender

  // -- introspection ---------------------------------------------------
  std::uint64_t delivered_bytes() const { return rcv_nxt_; }
  std::uint64_t acked_bytes() const { return snd_una_; }
  double cwnd_segments() const {
    return static_cast<double>(cwnd_) / static_cast<double>(cfg_.mss);
  }
  Time srtt() const { return srtt_; }
  const TcpStats& stats() const { return stats_; }
  const ThroughputSeries& goodput() const { return goodput_; }
  std::uint32_t flow_id() const { return flow_id_; }
  net::NodeId sender() const { return sender_; }
  net::NodeId receiver() const { return receiver_; }

 private:
  // -- sender side -------------------------------------------------------
  void try_send();
  void send_segment(std::uint64_t seq_start, bool is_retransmission);
  void arm_rto();
  void on_rto();
  void enter_fast_recovery();
  void update_rtt(Time sample);
  std::uint64_t flight_size() const {
    return snd_nxt_ >= snd_una_ ? snd_nxt_ - snd_una_ : 0;
  }

  // -- receiver side -----------------------------------------------------
  void deliver_in_order();
  void send_ack();

  sim::Scheduler& sched_;
  IpIdAllocator& ip_ids_;
  TcpConfig cfg_;
  std::uint32_t flow_id_;
  net::NodeId sender_;
  net::NodeId receiver_;

  // Sender state.
  std::uint64_t app_limit_ = 0;  // bytes the app has made available
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  std::size_t cwnd_;
  std::size_t ssthresh_;
  unsigned dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_point_ = 0;
  Time rto_;
  Time srtt_ = Time::zero();
  Time rttvar_ = Time::zero();
  bool have_rtt_ = false;
  sim::EventId rto_event_;
  bool rto_armed_ = false;
  /// seq_end -> (send time, was retransmitted) for RTT sampling (Karn).
  std::map<std::uint64_t, std::pair<Time, bool>> rtt_probes_;
  double ca_accumulator_ = 0.0;  // fractional cwnd growth in CA

  // Receiver state.
  std::uint64_t rcv_nxt_ = 0;
  std::map<std::uint64_t, std::uint64_t> ooo_;  // start -> end intervals

  TcpStats stats_;
  ThroughputSeries goodput_;
  // Instrumentation (null when the sim has no metrics context).
  metrics::Counter* m_retransmissions_ = nullptr;
  metrics::Counter* m_timeouts_ = nullptr;
  net::FlightRecorder* recorder_ = nullptr;
  obs::CausalTracer* causal_ = nullptr;
  obs::HealthEngine* health_ = nullptr;
};

}  // namespace wgtt::transport
