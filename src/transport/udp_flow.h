// Constant-bit-rate UDP flow (the iperf3 -u of the paper's experiments).
//
// The sender emits fixed-size datagrams at a configured offered load; the
// receiver tracks sequence numbers, loss, reordering, and a binned
// throughput timeseries (paper Figs. 4, 15, 23).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "net/flight_recorder.h"
#include "net/packet.h"
#include "sim/scheduler.h"
#include "util/causal.h"
#include "util/health.h"
#include "util/stats.h"

namespace wgtt::transport {

/// Allocates the per-source IP identification counter — the field the WGTT
/// controller keys its uplink de-duplication on (§3.2.2).
class IpIdAllocator {
 public:
  std::uint16_t next(net::NodeId src) { return counters_[src]++; }

 private:
  std::map<net::NodeId, std::uint16_t> counters_;
};

struct UdpFlowConfig {
  std::uint32_t flow_id = 0;
  net::NodeId src = 0;
  net::NodeId dst = 0;
  double offered_load_bps = 15e6;
  std::size_t datagram_bytes = 1472;  // + 28 header = 1500 on the wire
  Time throughput_bin = Time::ms(500);
};

class UdpSender {
 public:
  UdpSender(sim::Scheduler& sched, IpIdAllocator& ip_ids, UdpFlowConfig cfg);

  /// Where datagrams go (the downlink or uplink injection point).
  std::function<void(net::PacketPtr)> transmit;

  void start();
  void stop() { running_ = false; }
  std::uint64_t sent() const { return next_seq_; }
  const UdpFlowConfig& config() const { return cfg_; }

 private:
  void emit();

  sim::Scheduler& sched_;
  IpIdAllocator& ip_ids_;
  UdpFlowConfig cfg_;
  Time interval_;
  bool running_ = false;
  std::uint64_t next_seq_ = 0;
  net::FlightRecorder* recorder_ = nullptr;
  obs::CausalTracer* causal_ = nullptr;
  obs::HealthEngine* health_ = nullptr;
};

class UdpReceiver {
 public:
  explicit UdpReceiver(sim::Scheduler& sched,
                       Time throughput_bin = Time::ms(500));

  void on_packet(const net::PacketPtr& pkt);

  std::uint64_t received() const { return received_; }
  std::uint64_t duplicates() const { return duplicates_; }
  /// Highest sequence seen + 1 (= sender count if nothing in flight).
  std::uint64_t highest_seq() const { return highest_seq_; }
  /// Loss rate relative to the highest sequence seen.
  double loss_rate() const;
  /// Loss rate within a recent window of sequence space (for timeseries).
  const ThroughputSeries& throughput() const { return series_; }
  /// (time, seq) points for received-sequence plots (paper Fig. 4).
  const std::vector<std::pair<Time, std::uint64_t>>& trace() const {
    return trace_;
  }
  void enable_trace(bool on) { trace_enabled_ = on; }

 private:
  sim::Scheduler& sched_;
  ThroughputSeries series_;
  std::uint64_t received_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t highest_seq_ = 0;
  std::vector<bool> seen_;
  bool trace_enabled_ = false;
  std::vector<std::pair<Time, std::uint64_t>> trace_;
  net::FlightRecorder* recorder_ = nullptr;
  obs::CausalTracer* causal_ = nullptr;
  obs::HealthEngine* health_ = nullptr;
};

}  // namespace wgtt::transport
