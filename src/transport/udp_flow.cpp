#include "transport/udp_flow.h"

namespace wgtt::transport {

UdpSender::UdpSender(sim::Scheduler& sched, IpIdAllocator& ip_ids,
                     UdpFlowConfig cfg)
    : sched_(sched), ip_ids_(ip_ids), cfg_(cfg) {
  const double pps =
      cfg_.offered_load_bps / (static_cast<double>(cfg_.datagram_bytes) * 8.0);
  interval_ = Time::sec(1.0 / pps);
  recorder_ = net::FlightRecorder::current();
  causal_ = obs::CausalTracer::current();
  health_ = obs::HealthEngine::current();
}

void UdpSender::start() {
  if (running_) return;
  running_ = true;
  emit();
}

void UdpSender::emit() {
  if (!running_) return;
  net::Packet p;
  p.type = net::PacketType::kData;
  p.src = cfg_.src;
  p.dst = cfg_.dst;
  p.flow_id = cfg_.flow_id;
  p.seq = next_seq_++;
  p.ip_id = ip_ids_.next(cfg_.src);
  p.size_bytes = cfg_.datagram_bytes + 28;  // IP + UDP headers
  p.created = sched_.now();
  net::PacketPtr out = net::make_packet(std::move(p));
  if (recorder_) {
    recorder_->record(out->uid, sched_.now(), net::Hop::kTransportSend,
                      cfg_.src,
                      {{"flow", cfg_.flow_id},
                       {"seq", static_cast<std::int64_t>(out->seq)}});
  }
  if (causal_ && causal_->sampled(out->uid)) {
    causal_->annotate("transport.send",
                      {{"uid", static_cast<std::int64_t>(out->uid)},
                       {"flow", cfg_.flow_id}});
  }
  if (transmit) {
    if (health_) health_->packet_sent();
    transmit(std::move(out));
  }
  sched_.schedule(interval_, [this]() { emit(); });
}

UdpReceiver::UdpReceiver(sim::Scheduler& sched, Time throughput_bin)
    : sched_(sched), series_(throughput_bin) {
  recorder_ = net::FlightRecorder::current();
  causal_ = obs::CausalTracer::current();
  health_ = obs::HealthEngine::current();
}

void UdpReceiver::on_packet(const net::PacketPtr& pkt) {
  const std::uint64_t seq = pkt->seq;
  if (seq >= seen_.size()) seen_.resize(seq + 1024, false);
  if (recorder_) {
    if (seen_[seq]) {
      recorder_->drop(pkt->uid, sched_.now(), net::Hop::kTransportRx,
                      pkt->dst, net::DropCause::kDuplicate,
                      {{"flow", pkt->flow_id},
                       {"seq", static_cast<std::int64_t>(seq)},
                       {"dup", 1}});
    } else {
      recorder_->record(pkt->uid, sched_.now(), net::Hop::kTransportRx,
                        pkt->dst,
                        {{"flow", pkt->flow_id},
                         {"seq", static_cast<std::int64_t>(seq)},
                         {"dup", 0}});
    }
  }
  if (seen_[seq]) {
    ++duplicates_;
    if (health_) health_->packet_dropped();
    return;
  }
  if (causal_ && causal_->sampled(pkt->uid)) {
    causal_->annotate("transport.rx",
                      {{"uid", static_cast<std::int64_t>(pkt->uid)},
                       {"flow", pkt->flow_id}});
  }
  seen_[seq] = true;
  ++received_;
  if (health_) health_->packet_delivered();
  highest_seq_ = std::max(highest_seq_, seq + 1);
  series_.add(sched_.now(), pkt->size_bytes);
  if (trace_enabled_) trace_.emplace_back(sched_.now(), seq);
}

double UdpReceiver::loss_rate() const {
  if (highest_seq_ == 0) return 0.0;
  return 1.0 - static_cast<double>(received_) /
                   static_cast<double>(highest_seq_);
}

}  // namespace wgtt::transport
