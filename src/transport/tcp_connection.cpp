#include "transport/tcp_connection.h"

#include <algorithm>

namespace wgtt::transport {

TcpConnection::TcpConnection(sim::Scheduler& sched, IpIdAllocator& ip_ids,
                             TcpConfig cfg, std::uint32_t flow_id,
                             net::NodeId sender, net::NodeId receiver)
    : sched_(sched),
      ip_ids_(ip_ids),
      cfg_(cfg),
      flow_id_(flow_id),
      sender_(sender),
      receiver_(receiver),
      cwnd_(cfg.mss * cfg.initial_cwnd_segments),
      ssthresh_(cfg.receive_window_bytes),
      rto_(cfg.initial_rto),
      goodput_(cfg.throughput_bin) {
  if (auto* reg = metrics::MetricsRegistry::current()) {
    m_retransmissions_ = &reg->counter("transport.tcp_retransmissions");
    m_timeouts_ = &reg->counter("transport.tcp_timeouts");
  }
  recorder_ = net::FlightRecorder::current();
  causal_ = obs::CausalTracer::current();
  health_ = obs::HealthEngine::current();
}

void TcpConnection::app_send(std::size_t bytes) {
  app_limit_ += bytes;
  try_send();
}

// ---------------------------------------------------------------------------
// Sender
// ---------------------------------------------------------------------------

void TcpConnection::try_send() {
  const std::uint64_t window =
      std::min<std::uint64_t>(cwnd_, cfg_.receive_window_bytes);
  while (snd_nxt_ < app_limit_ && snd_nxt_ - snd_una_ < window) {
    send_segment(snd_nxt_, /*is_retransmission=*/false);
    snd_nxt_ += std::min<std::uint64_t>(cfg_.mss, app_limit_ - snd_nxt_);
  }
  if (flight_size() > 0 && !rto_armed_) arm_rto();
}

void TcpConnection::send_segment(std::uint64_t seq_start,
                                 bool is_retransmission) {
  const std::size_t payload = static_cast<std::size_t>(
      std::min<std::uint64_t>(cfg_.mss, app_limit_ - seq_start));
  if (payload == 0) return;
  net::Packet p;
  p.type = net::PacketType::kData;
  p.src = sender_;
  p.dst = receiver_;
  p.flow_id = flow_id_;
  p.seq = seq_start;
  p.ip_id = ip_ids_.next(sender_);
  p.size_bytes = payload + 52;  // IP + TCP headers
  p.created = sched_.now();
  ++stats_.segments_sent;
  if (is_retransmission) {
    ++stats_.retransmissions;
    if (m_retransmissions_) m_retransmissions_->add();
  }

  const std::uint64_t seq_end = seq_start + payload;
  auto [it, inserted] =
      rtt_probes_.try_emplace(seq_end, sched_.now(), is_retransmission);
  if (!inserted) {
    it->second.second = true;  // Karn: never sample a retransmitted range
  }
  net::PacketPtr out = net::make_packet(std::move(p));
  if (recorder_) {
    recorder_->record(out->uid, sched_.now(), net::Hop::kTransportSend,
                      sender_,
                      {{"flow", flow_id_},
                       {"seq", static_cast<std::int64_t>(seq_start)},
                       {"retx", is_retransmission ? 1 : 0}});
  }
  if (causal_ && causal_->sampled(out->uid)) {
    causal_->annotate("transport.send",
                      {{"uid", static_cast<std::int64_t>(out->uid)},
                       {"flow", flow_id_},
                       {"retx", is_retransmission ? 1 : 0}});
  }
  if (transmit_data) {
    if (health_) health_->packet_sent();
    transmit_data(std::move(out));
  }
}

void TcpConnection::arm_rto() {
  rto_armed_ = true;
  rto_event_ = sched_.schedule(rto_, [this]() { on_rto(); });
}

void TcpConnection::on_rto() {
  rto_armed_ = false;
  if (flight_size() == 0) return;
  ++stats_.timeouts;
  if (m_timeouts_) m_timeouts_->add();
  // RFC 5681 loss recovery by timeout: collapse to one segment, go-back-N.
  ssthresh_ = std::max<std::size_t>(static_cast<std::size_t>(flight_size()) / 2,
                                    2 * cfg_.mss);
  cwnd_ = cfg_.mss;
  in_recovery_ = false;
  dup_acks_ = 0;
  snd_nxt_ = snd_una_;
  rto_ = std::min(rto_ * 2.0, cfg_.max_rto);  // Karn backoff
  rtt_probes_.clear();
  try_send();
}

void TcpConnection::update_rtt(Time sample) {
  // RFC 6298.
  if (!have_rtt_) {
    srtt_ = sample;
    rttvar_ = sample * 0.5;
    have_rtt_ = true;
  } else {
    const Time delta = srtt_ > sample ? srtt_ - sample : sample - srtt_;
    rttvar_ = rttvar_ * 0.75 + delta * 0.25;
    srtt_ = srtt_ * 0.875 + sample * 0.125;
  }
  Time candidate = srtt_ + std::max(Time::ms(10), rttvar_ * 4.0);
  rto_ = std::clamp(candidate, cfg_.min_rto, cfg_.max_rto);
}

void TcpConnection::enter_fast_recovery() {
  ++stats_.fast_retransmits;
  ssthresh_ = std::max<std::size_t>(static_cast<std::size_t>(flight_size()) / 2,
                                    2 * cfg_.mss);
  cwnd_ = ssthresh_ + 3 * cfg_.mss;
  in_recovery_ = true;
  recover_point_ = snd_nxt_;
  send_segment(snd_una_, /*is_retransmission=*/true);
}

void TcpConnection::on_network_ack(const net::PacketPtr& pkt) {
  // Every ack instance reaching the sender terminates here (dup-acks too) —
  // the health ledger counts it delivered regardless of how it advances cwnd.
  if (health_) health_->packet_delivered();
  ++stats_.acks_received;
  const std::uint64_t ack = pkt->seq;
  if (recorder_) {
    recorder_->record(pkt->uid, sched_.now(), net::Hop::kTransportRx, sender_,
                      {{"flow", flow_id_},
                       {"ack", static_cast<std::int64_t>(ack)}});
  }
  if (causal_ && causal_->sampled(pkt->uid)) {
    causal_->annotate("transport.rx",
                      {{"uid", static_cast<std::int64_t>(pkt->uid)},
                       {"flow", flow_id_}});
  }

  if (ack <= snd_una_) {
    if (ack == snd_una_ && flight_size() > 0) {
      ++stats_.dup_acks;
      ++dup_acks_;
      if (in_recovery_) {
        cwnd_ += cfg_.mss;  // inflate during recovery
        try_send();
      } else if (dup_acks_ == 3) {
        enter_fast_recovery();
      }
    }
    return;
  }

  // New data acknowledged.
  const std::uint64_t newly_acked = ack - snd_una_;
  snd_una_ = ack;
  // A late ACK can arrive for data sent before an RTO rolled snd_nxt_ back
  // (go-back-N); the send point can never sit behind the ack point.
  if (snd_nxt_ < snd_una_) snd_nxt_ = snd_una_;
  dup_acks_ = 0;

  // RTT sample from the newest fully-acked, never-retransmitted probe.
  for (auto it = rtt_probes_.begin();
       it != rtt_probes_.end() && it->first <= ack;) {
    if (!it->second.second) update_rtt(sched_.now() - it->second.first);
    it = rtt_probes_.erase(it);
  }

  if (in_recovery_) {
    if (ack >= recover_point_) {
      // Full recovery.
      in_recovery_ = false;
      cwnd_ = ssthresh_;
    } else {
      // NewReno partial ack: retransmit the next hole, deflate.
      send_segment(snd_una_, /*is_retransmission=*/true);
      cwnd_ = cwnd_ > newly_acked ? cwnd_ - static_cast<std::size_t>(newly_acked)
                                  : cfg_.mss;
      cwnd_ += cfg_.mss;
    }
  } else if (cwnd_ < ssthresh_) {
    cwnd_ += static_cast<std::size_t>(newly_acked);  // slow start
  } else {
    // Congestion avoidance: +1 MSS per cwnd of acked data.
    ca_accumulator_ += static_cast<double>(newly_acked) *
                       static_cast<double>(cfg_.mss) /
                       static_cast<double>(cwnd_);
    if (ca_accumulator_ >= cfg_.mss) {
      cwnd_ += cfg_.mss;
      ca_accumulator_ -= cfg_.mss;
    }
  }

  // Re-arm the retransmission timer (RFC 6298 5.3).
  if (rto_armed_) {
    sched_.cancel(rto_event_);
    rto_armed_ = false;
  }
  if (flight_size() > 0) arm_rto();
  try_send();
}

// ---------------------------------------------------------------------------
// Receiver
// ---------------------------------------------------------------------------

void TcpConnection::on_network_data(const net::PacketPtr& pkt) {
  // Stale duplicates terminate here just like fresh data: every instance
  // reaching the receiver leaves the in-flight ledger.
  if (health_) health_->packet_delivered();
  const std::uint64_t start = pkt->seq;
  const std::uint64_t payload = pkt->size_bytes - 52;
  const std::uint64_t end = start + payload;

  if (recorder_) {
    recorder_->record(pkt->uid, sched_.now(), net::Hop::kTransportRx,
                      receiver_,
                      {{"flow", flow_id_},
                       {"seq", static_cast<std::int64_t>(start)},
                       {"dup", end <= rcv_nxt_ ? 1 : 0}});
  }
  if (causal_ && causal_->sampled(pkt->uid)) {
    causal_->annotate("transport.rx",
                      {{"uid", static_cast<std::int64_t>(pkt->uid)},
                       {"flow", flow_id_}});
  }
  if (end <= rcv_nxt_) {
    send_ack();  // stale duplicate: re-ack
    return;
  }
  // Record the interval, then pull forward everything now in order.
  auto [it, inserted] = ooo_.try_emplace(start, end);
  if (!inserted && it->second < end) it->second = end;
  deliver_in_order();
  send_ack();
}

void TcpConnection::deliver_in_order() {
  const std::uint64_t before = rcv_nxt_;
  for (auto it = ooo_.begin(); it != ooo_.end();) {
    if (it->first > rcv_nxt_) break;
    if (it->second > rcv_nxt_) rcv_nxt_ = it->second;
    it = ooo_.erase(it);
  }
  if (rcv_nxt_ > before) {
    const std::uint64_t bytes = rcv_nxt_ - before;
    goodput_.add(sched_.now(), static_cast<std::size_t>(bytes));
    if (on_app_receive) {
      on_app_receive(static_cast<std::size_t>(bytes), sched_.now());
    }
  }
}

void TcpConnection::send_ack() {
  ++stats_.acks_sent;
  net::Packet p;
  p.type = net::PacketType::kTcpAck;
  p.src = receiver_;
  p.dst = sender_;
  p.flow_id = flow_id_;
  p.seq = rcv_nxt_;  // cumulative acknowledgement
  p.ip_id = ip_ids_.next(receiver_);
  p.size_bytes = cfg_.ack_bytes;
  p.created = sched_.now();
  net::PacketPtr out = net::make_packet(std::move(p));
  if (recorder_) {
    recorder_->record(out->uid, sched_.now(), net::Hop::kTransportSend,
                      receiver_,
                      {{"flow", flow_id_},
                       {"ack", static_cast<std::int64_t>(rcv_nxt_)}});
  }
  if (causal_ && causal_->sampled(out->uid)) {
    causal_->annotate("transport.send",
                      {{"uid", static_cast<std::int64_t>(out->uid)},
                       {"flow", flow_id_},
                       {"ack", 1}});
  }
  if (transmit_ack) {
    if (health_) health_->packet_sent();
    transmit_ack(std::move(out));
  }
}

}  // namespace wgtt::transport
