#include "channel/mobility.h"

#include <cassert>

namespace wgtt::channel {

WaypointMobility::WaypointMobility(std::vector<Waypoint> waypoints)
    : wp_(std::move(waypoints)) {
  assert(!wp_.empty());
  cum_dist_.resize(wp_.size(), 0.0);
  for (std::size_t i = 1; i < wp_.size(); ++i) {
    assert(wp_[i].when >= wp_[i - 1].when);
    cum_dist_[i] = cum_dist_[i - 1] + distance(wp_[i - 1].pos, wp_[i].pos);
  }
}

std::size_t WaypointMobility::segment(Time t) const {
  if (wp_.size() == 1 || t <= wp_.front().when) return 0;
  for (std::size_t i = 1; i < wp_.size(); ++i) {
    if (t < wp_[i].when) return i - 1;
  }
  return wp_.size() - 1;
}

Vec3 WaypointMobility::position(Time t) const {
  if (t <= wp_.front().when) return wp_.front().pos;
  if (t >= wp_.back().when) return wp_.back().pos;
  const std::size_t i = segment(t);
  const Waypoint& a = wp_[i];
  const Waypoint& b = wp_[i + 1];
  const double span = (b.when - a.when).to_sec();
  if (span <= 0.0) return b.pos;
  const double f = (t - a.when).to_sec() / span;
  return a.pos + (b.pos - a.pos) * f;
}

Vec3 WaypointMobility::velocity(Time t) const {
  if (t < wp_.front().when || t >= wp_.back().when) return {};
  const std::size_t i = segment(t);
  const Waypoint& a = wp_[i];
  const Waypoint& b = wp_[i + 1];
  const double span = (b.when - a.when).to_sec();
  if (span <= 0.0) return {};
  return (b.pos - a.pos) * (1.0 / span);
}

double WaypointMobility::distance_travelled(Time t) const {
  if (t <= wp_.front().when) return 0.0;
  if (t >= wp_.back().when) return cum_dist_.back();
  const std::size_t i = segment(t);
  const Waypoint& a = wp_[i];
  const Waypoint& b = wp_[i + 1];
  const double span = (b.when - a.when).to_sec();
  if (span <= 0.0) return cum_dist_[i];
  const double f = (t - a.when).to_sec() / span;
  return cum_dist_[i] + distance(a.pos, b.pos) * f;
}

}  // namespace wgtt::channel
