#include "channel/channel_model.h"

#include <array>
#include <cassert>
#include <complex>
#include <limits>

#include "phy/esnr.h"
#include "util/units.h"

namespace wgtt::channel {

ChannelModel::ChannelModel(RadioConfig radio, PathLossConfig pathloss,
                           ShadowingConfig shadowing, FadingConfig fading,
                           Rng rng)
    : radio_(radio),
      pathloss_(pathloss),
      shadowing_cfg_(shadowing),
      fading_cfg_(fading),
      rng_(rng) {
  if (auto* p = prof::Profiler::current()) {
    prof_ = p;
    p_csi_ = &p->section("channel.csi");
  }
  fading_cfg_.carrier_hz = radio_.carrier_hz;
}

void ChannelModel::add_ap(ApSite site) {
  assert(site.antenna && "AP needs an antenna pattern");
  ap_order_.push_back(site.id);
  aps_.emplace(site.id, std::move(site));
}

void ChannelModel::add_client(net::NodeId id,
                              std::shared_ptr<const MobilityModel> mobility,
                              double antenna_gain_dbi) {
  assert(mobility);
  clients_[id] = ClientInfo{std::move(mobility), antenna_gain_dbi};
}

const ApSite& ChannelModel::ap(net::NodeId id) const {
  auto it = aps_.find(id);
  assert(it != aps_.end());
  return it->second;
}

const MobilityModel& ChannelModel::client_mobility(net::NodeId id) const {
  auto it = clients_.find(id);
  assert(it != clients_.end());
  return *it->second.mobility;
}

double ChannelModel::noise_floor_dbm() const {
  return wgtt::noise_floor_dbm(radio_.bandwidth_hz, radio_.noise_figure_db);
}

double ChannelModel::large_scale_gain_db(const ApSite& ap,
                                         const ClientInfo& client,
                                         Time t) const {
  const Vec3 pos = client.mobility->position(t);
  const double d = distance(ap.position, pos);
  const double off_boresight = angle_between(ap.boresight, pos - ap.position);
  return ap.antenna->gain_dbi(off_boresight) + client.antenna_gain_dbi -
         pathloss_.loss_db(d) - radio_.ap_system_loss_db;
}

ChannelModel::Link& ChannelModel::link(net::NodeId ap_id,
                                       net::NodeId client_id) const {
  auto key = std::make_pair(ap_id, client_id);
  auto it = links_.find(key);
  if (it == links_.end()) {
    Link l;
    const std::uint64_t tag =
        (static_cast<std::uint64_t>(ap_id) << 32) | client_id;
    l.fading = std::make_unique<FadingProcess>(fading_cfg_,
                                               rng_.fork(tag * 2 + 1));
    l.shadowing = std::make_unique<ShadowingProcess>(shadowing_cfg_,
                                                     rng_.fork(tag * 2));
    it = links_.emplace(key, std::move(l)).first;
  }
  return it->second;
}

phy::Csi ChannelModel::make_csi(net::NodeId ap_id, net::NodeId client_id,
                                Time t, double tx_power_dbm) const {
  prof::ScopedSection timer(prof_, p_csi_);
  const ApSite& site = ap(ap_id);
  auto cit = clients_.find(client_id);
  assert(cit != clients_.end());
  const ClientInfo& client = cit->second;

  Link& l = link(ap_id, client_id);
  const double travelled = client.mobility->distance_travelled(t);
  const double large_scale = large_scale_gain_db(site, client, t) -
                             l.shadowing->at(travelled);

  static_assert(phy::kNumSubcarriers == kNumSubcarriers);
  std::array<std::complex<double>, kNumSubcarriers> h;
  l.fading->response(travelled, ht20_subcarrier_offsets_hz(),
                     std::span<std::complex<double>>(h.data(), h.size()));

  phy::Csi csi;
  csi.measured_at = t;
  const double base_dbm = tx_power_dbm + large_scale;
  const double noise = noise_floor_dbm();
  double wideband_mw = 0.0;
  for (std::size_t k = 0; k < kNumSubcarriers; ++k) {
    const double h2 = std::norm(h[k]);
    const double fade_db =
        h2 > 1e-12 ? linear_to_db(h2) : -120.0;
    csi.subcarrier_snr_db[k] = base_dbm + fade_db - noise;
    wideband_mw += dbm_to_mw(base_dbm + fade_db);
  }
  csi.rssi_dbm = mw_to_dbm(wideband_mw / static_cast<double>(kNumSubcarriers));
  return csi;
}

phy::Csi ChannelModel::downlink_csi(net::NodeId ap, net::NodeId client,
                                    Time t) const {
  return make_csi(ap, client, t, radio_.ap_tx_power_dbm);
}

phy::Csi ChannelModel::uplink_csi(net::NodeId ap, net::NodeId client,
                                  Time t) const {
  return make_csi(ap, client, t, radio_.client_tx_power_dbm);
}

double ChannelModel::downlink_rssi_dbm(net::NodeId ap, net::NodeId client,
                                       Time t) const {
  return make_csi(ap, client, t, radio_.ap_tx_power_dbm).rssi_dbm;
}

double ChannelModel::uplink_rssi_dbm(net::NodeId ap, net::NodeId client,
                                     Time t) const {
  return make_csi(ap, client, t, radio_.client_tx_power_dbm).rssi_dbm;
}

double ChannelModel::client_to_client_gain_db(net::NodeId a, net::NodeId b,
                                              Time t) const {
  auto ia = clients_.find(a);
  auto ib = clients_.find(b);
  assert(ia != clients_.end() && ib != clients_.end());
  const double d = distance(ia->second.mobility->position(t),
                            ib->second.mobility->position(t));
  return ia->second.antenna_gain_dbi + ib->second.antenna_gain_dbi -
         pathloss_.loss_db(d);
}

double ChannelModel::path_gain_db(net::NodeId a, net::NodeId b, Time t) const {
  const bool a_ap = aps_.count(a) != 0;
  const bool b_ap = aps_.count(b) != 0;
  if (a_ap && b_ap) {
    const ApSite& sa = ap(a);
    const ApSite& sb = ap(b);
    const double d = distance(sa.position, sb.position);
    const double ga =
        sa.antenna->gain_dbi(angle_between(sa.boresight, sb.position - sa.position));
    const double gb =
        sb.antenna->gain_dbi(angle_between(sb.boresight, sa.position - sb.position));
    return ga + gb - pathloss_.loss_db(d) - 2.0 * radio_.ap_system_loss_db;
  }
  if (!a_ap && !b_ap) return client_to_client_gain_db(a, b, t);
  const net::NodeId ap_id = a_ap ? a : b;
  const net::NodeId client_id = a_ap ? b : a;
  auto cit = clients_.find(client_id);
  assert(cit != clients_.end());
  // Large-scale only (no shadowing/fading) — this feeds carrier-sense and
  // interference sums where second-order accuracy is enough.
  return large_scale_gain_db(ap(ap_id), cit->second, t);
}

net::NodeId ChannelModel::best_ap(net::NodeId client, Time t) const {
  net::NodeId best = 0;
  double best_esnr = -std::numeric_limits<double>::infinity();
  for (net::NodeId id : ap_order_) {
    const phy::Csi csi = downlink_csi(id, client, t);
    const double esnr = phy::selection_esnr_db(csi);
    if (esnr > best_esnr) {
      best_esnr = esnr;
      best = id;
    }
  }
  return best;
}

}  // namespace wgtt::channel
