#include "channel/channel_model.h"

#include <array>
#include <cassert>
#include <cmath>
#include <complex>
#include <limits>
#include <span>

#include "phy/esnr.h"
#include "util/units.h"
#include "util/vec_math.h"

namespace wgtt::channel {

ChannelModel::ChannelModel(RadioConfig radio, PathLossConfig pathloss,
                           ShadowingConfig shadowing, FadingConfig fading,
                           Rng rng)
    : radio_(radio),
      pathloss_(pathloss),
      shadowing_cfg_(shadowing),
      fading_cfg_(fading),
      rng_(rng) {
  if (auto* p = prof::Profiler::current()) {
    prof_ = p;
    p_csi_ = &p->section("channel.csi");
  }
  fading_cfg_.carrier_hz = radio_.carrier_hz;
}

void ChannelModel::add_ap(ApSite site) {
  assert(site.antenna && "AP needs an antenna pattern");
  ap_order_.push_back(site.id);
  aps_.emplace(site.id, std::move(site));
}

void ChannelModel::add_client(net::NodeId id,
                              std::shared_ptr<const MobilityModel> mobility,
                              double antenna_gain_dbi) {
  assert(mobility);
  clients_[id] = ClientInfo{std::move(mobility), antenna_gain_dbi};
}

const ApSite& ChannelModel::ap(net::NodeId id) const {
  auto it = aps_.find(id);
  assert(it != aps_.end());
  return it->second;
}

const MobilityModel& ChannelModel::client_mobility(net::NodeId id) const {
  auto it = clients_.find(id);
  assert(it != clients_.end());
  return *it->second.mobility;
}

double ChannelModel::noise_floor_dbm() const {
  return wgtt::noise_floor_dbm(radio_.bandwidth_hz, radio_.noise_figure_db);
}

double ChannelModel::large_scale_gain_db(const ApSite& ap,
                                         const ClientInfo& client,
                                         Time t) const {
  const Vec3 pos = client.mobility->position(t);
  const double d = distance(ap.position, pos);
  const double off_boresight = angle_between(ap.boresight, pos - ap.position);
  return ap.antenna->gain_dbi(off_boresight) + client.antenna_gain_dbi -
         pathloss_.loss_db(d) - radio_.ap_system_loss_db;
}

ChannelModel::Link& ChannelModel::link(net::NodeId ap_id,
                                       net::NodeId client_id) const {
  auto key = std::make_pair(ap_id, client_id);
  auto it = links_.find(key);
  if (it == links_.end()) {
    Link l;
    const std::uint64_t tag =
        (static_cast<std::uint64_t>(ap_id) << 32) | client_id;
    l.fading = std::make_unique<FadingProcess>(fading_cfg_,
                                               rng_.fork(tag * 2 + 1));
    l.shadowing = std::make_unique<ShadowingProcess>(shadowing_cfg_,
                                                     rng_.fork(tag * 2));
    it = links_.emplace(key, std::move(l)).first;
  }
  return it->second;
}

void ChannelModel::refresh_fading(Link& l, double travelled) const {
  if (l.h_valid && l.h_distance == travelled) return;
  static_assert(phy::kNumSubcarriers == kNumSubcarriers);
  l.fading->response(travelled, ht20_subcarrier_offsets_hz(),
                     std::span<std::complex<double>>(l.h.data(), l.h.size()));
  if (vecm::available()) {
    // Batched 10*log10 over the squared magnitudes; the floor test reads
    // the exact h2, so the -120 dB clamp binds identically to the scalar
    // path (lanes under the floor may produce -inf and are discarded).
    std::array<double, kNumSubcarriers> h2;
    for (std::size_t k = 0; k < kNumSubcarriers; ++k) {
      h2[k] = std::norm(l.h[k]);
    }
    vecm::linear_to_db(h2.data(), l.fade_db.data(), kNumSubcarriers);
    for (std::size_t k = 0; k < kNumSubcarriers; ++k) {
      if (!(h2[k] > 1e-12)) l.fade_db[k] = -120.0;
    }
  } else {
    for (std::size_t k = 0; k < kNumSubcarriers; ++k) {
      const double h2 = std::norm(l.h[k]);
      l.fade_db[k] = h2 > 1e-12 ? linear_to_db(h2) : -120.0;
    }
  }
  l.h_distance = travelled;
  l.h_valid = true;
  l.csi_valid = false;  // cached Csi was built from the previous response
}

phy::Csi ChannelModel::make_csi(net::NodeId ap_id, net::NodeId client_id,
                                Time t, double tx_power_dbm) const {
  prof::ScopedSection timer(prof_, p_csi_);
  const ApSite& site = ap(ap_id);
  auto cit = clients_.find(client_id);
  assert(cit != clients_.end());
  const ClientInfo& client = cit->second;

  Link& l = link(ap_id, client_id);
  const double travelled = client.mobility->distance_travelled(t);
  const double large_scale = large_scale_gain_db(site, client, t) -
                             l.shadowing->at(travelled);
  const double base_dbm = tx_power_dbm + large_scale;
  if (l.csi_valid && l.csi_key_travelled == travelled &&
      l.csi_key_base_dbm == base_dbm) {
    l.csi.measured_at = t;
    return l.csi;
  }

  refresh_fading(l, travelled);

  phy::Csi csi;
  csi.measured_at = t;
  const double noise = noise_floor_dbm();
  double wideband_mw = 0.0;
  if (vecm::available()) {
    // Batch the 56 pow(10, x/10) calls of the RSSI power sum; the sum
    // itself stays sequential in subcarrier order (reference association).
    std::array<double, kNumSubcarriers> rx_dbm;
    std::array<double, kNumSubcarriers> rx_mw;
    for (std::size_t k = 0; k < kNumSubcarriers; ++k) {
      const double fade_db = l.fade_db[k];
      csi.subcarrier_snr_db[k] = base_dbm + fade_db - noise;
      rx_dbm[k] = base_dbm + fade_db;
    }
    vecm::db_to_linear(rx_dbm.data(), rx_mw.data(), kNumSubcarriers);
    for (std::size_t k = 0; k < kNumSubcarriers; ++k) {
      wideband_mw += rx_mw[k];
    }
  } else {
    for (std::size_t k = 0; k < kNumSubcarriers; ++k) {
      const double fade_db = l.fade_db[k];
      csi.subcarrier_snr_db[k] = base_dbm + fade_db - noise;
      wideband_mw += dbm_to_mw(base_dbm + fade_db);
    }
  }
  csi.rssi_dbm = mw_to_dbm(wideband_mw / static_cast<double>(kNumSubcarriers));
  l.csi = csi;
  l.csi_key_travelled = travelled;
  l.csi_key_base_dbm = base_dbm;
  l.csi_valid = true;
  return csi;
}

phy::Csi ChannelModel::downlink_csi(net::NodeId ap, net::NodeId client,
                                    Time t) const {
  return make_csi(ap, client, t, radio_.ap_tx_power_dbm);
}

phy::Csi ChannelModel::uplink_csi(net::NodeId ap, net::NodeId client,
                                  Time t) const {
  return make_csi(ap, client, t, radio_.client_tx_power_dbm);
}

double ChannelModel::downlink_rssi_dbm(net::NodeId ap, net::NodeId client,
                                       Time t) const {
  return make_csi(ap, client, t, radio_.ap_tx_power_dbm).rssi_dbm;
}

double ChannelModel::uplink_rssi_dbm(net::NodeId ap, net::NodeId client,
                                     Time t) const {
  return make_csi(ap, client, t, radio_.client_tx_power_dbm).rssi_dbm;
}

double ChannelModel::client_to_client_gain_db(net::NodeId a, net::NodeId b,
                                              Time t) const {
  auto ia = clients_.find(a);
  auto ib = clients_.find(b);
  assert(ia != clients_.end() && ib != clients_.end());
  const double d = distance(ia->second.mobility->position(t),
                            ib->second.mobility->position(t));
  return ia->second.antenna_gain_dbi + ib->second.antenna_gain_dbi -
         pathloss_.loss_db(d);
}

double ChannelModel::path_gain_db(net::NodeId a, net::NodeId b, Time t) const {
  const bool a_ap = aps_.count(a) != 0;
  const bool b_ap = aps_.count(b) != 0;
  if (a_ap && b_ap) {
    const ApSite& sa = ap(a);
    const ApSite& sb = ap(b);
    const double d = distance(sa.position, sb.position);
    const double ga =
        sa.antenna->gain_dbi(angle_between(sa.boresight, sb.position - sa.position));
    const double gb =
        sb.antenna->gain_dbi(angle_between(sb.boresight, sa.position - sb.position));
    return ga + gb - pathloss_.loss_db(d) - 2.0 * radio_.ap_system_loss_db;
  }
  if (!a_ap && !b_ap) return client_to_client_gain_db(a, b, t);
  const net::NodeId ap_id = a_ap ? a : b;
  const net::NodeId client_id = a_ap ? b : a;
  auto cit = clients_.find(client_id);
  assert(cit != clients_.end());
  // Large-scale only (no shadowing/fading) — this feeds carrier-sense and
  // interference sums where second-order accuracy is enough.
  return large_scale_gain_db(ap(ap_id), cit->second, t);
}

double ChannelModel::downlink_selection_esnr_db(net::NodeId ap_id,
                                                net::NodeId client_id,
                                                Time t) const {
  prof::ScopedSection timer(prof_, p_csi_);
  const ApSite& site = ap(ap_id);
  auto cit = clients_.find(client_id);
  assert(cit != clients_.end());
  const ClientInfo& client = cit->second;

  Link& l = link(ap_id, client_id);
  const double travelled = client.mobility->distance_travelled(t);
  const double large_scale = large_scale_gain_db(site, client, t) -
                             l.shadowing->at(travelled);
  const double base_dbm = radio_.ap_tx_power_dbm + large_scale;
  if (l.esnr_valid && l.esnr_key_travelled == travelled &&
      l.esnr_key_base_dbm == base_dbm) {
    return l.esnr_db;
  }
  refresh_fading(l, travelled);

  // Same per-subcarrier SNR expression as make_csi(), minus the RSSI power
  // sum and the Csi copy — phy::selection_esnr_db sees identical inputs.
  const double noise = noise_floor_dbm();
  std::array<double, kNumSubcarriers> snr_db;
  for (std::size_t k = 0; k < kNumSubcarriers; ++k) {
    snr_db[k] = base_dbm + l.fade_db[k] - noise;
  }
  const double esnr = phy::selection_esnr_db(
      std::span<const double>(snr_db.data(), snr_db.size()));
  l.esnr_valid = true;
  l.esnr_key_travelled = travelled;
  l.esnr_key_base_dbm = base_dbm;
  l.esnr_db = esnr;
  return esnr;
}

void ChannelModel::set_candidate_radius(double meters) {
  candidate_radius_m_ = meters > 0.0
                            ? meters
                            : std::numeric_limits<double>::infinity();
}

void ChannelModel::candidate_aps(net::NodeId client, Time t,
                                 std::vector<net::NodeId>& out) const {
  out.clear();
  if (!std::isfinite(candidate_radius_m_)) {
    out.assign(ap_order_.begin(), ap_order_.end());
    return;
  }
  auto cit = clients_.find(client);
  assert(cit != clients_.end());
  const Vec3 pos = cit->second.mobility->position(t);
  for (net::NodeId id : ap_order_) {
    if (distance(ap(id).position, pos) <= candidate_radius_m_) {
      out.push_back(id);
    }
  }
  // Never return an empty candidate set: a client parked beyond every AP's
  // radius still needs a (bad) selection rather than none at all.
  if (out.empty()) out.assign(ap_order_.begin(), ap_order_.end());
}

net::NodeId ChannelModel::best_ap(net::NodeId client, Time t) const {
  net::NodeId best = 0;
  double best_esnr = -std::numeric_limits<double>::infinity();
  std::vector<net::NodeId> candidates;
  candidate_aps(client, t, candidates);
  for (net::NodeId id : candidates) {
    const double esnr = downlink_selection_esnr_db(id, client, t);
    if (esnr > best_esnr) {
      best_esnr = esnr;
      best = id;
    }
  }
  return best;
}

}  // namespace wgtt::channel
