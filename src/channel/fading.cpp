#include "channel/fading.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/units.h"
#include "util/vec_math.h"

namespace wgtt::channel {

namespace {
// Twiddle caching is keyed by grid contents; cap the number of distinct
// grids one process will cache so adversarial callers (tests sweeping many
// grids) cannot grow memory without bound.  Past the cap, response() falls
// back to computing twiddles inline — same expressions, just uncached.
constexpr std::size_t kMaxCachedGrids = 8;
}  // namespace

FadingProcess::FadingProcess(FadingConfig cfg, Rng rng) {
  // Normalise tap powers to sum to 1.
  double total = 0.0;
  for (const auto& spec : cfg.taps) total += db_to_linear(spec.relative_power_db);

  const double wavenumber = 2.0 * kPi / wavelength_m(cfg.carrier_hz);
  const int n = cfg.sinusoids_per_tap;

  // RNG draw order is load-bearing: it must match ReferenceFading exactly
  // (per tap: LOS angle, LOS phase, then per sinusoid theta, phase) or the
  // two classes realise different channels from the same seed.
  taps_.reserve(cfg.taps.size());
  sin_spatial_freq_.reserve(cfg.taps.size() * static_cast<std::size_t>(n));
  sin_phase_.reserve(cfg.taps.size() * static_cast<std::size_t>(n));
  for (const auto& spec : cfg.taps) {
    Tap tap;
    tap.amplitude = std::sqrt(db_to_linear(spec.relative_power_db) / total);
    tap.delay_s = spec.delay_ns * 1e-9;
    const double k_factor = spec.rician_k;
    tap.los_fraction = std::sqrt(k_factor / (k_factor + 1.0));
    tap.nlos_fraction = std::sqrt(1.0 / (k_factor + 1.0)) /
                        std::sqrt(static_cast<double>(n));
    tap.los_spatial_freq = wavenumber * std::cos(rng.uniform(0.0, kPi));
    tap.los_phase = rng.uniform(0.0, 2.0 * kPi);
    tap.sin_begin = sin_spatial_freq_.size();
    tap.sin_count = static_cast<std::size_t>(n);
    for (int i = 0; i < n; ++i) {
      // Angles of arrival uniform around the circle (Clarke's model).
      const double theta = rng.uniform(0.0, 2.0 * kPi);
      sin_spatial_freq_.push_back(wavenumber * std::cos(theta));
      sin_phase_.push_back(rng.uniform(0.0, 2.0 * kPi));
    }
    taps_.push_back(tap);
  }
}

void FadingProcess::batch_tap_gains(double distance_m,
                                    std::complex<double>* gains) const {
  const std::size_t total = sin_spatial_freq_.size();
  scratch_arg_.resize(total);
  scratch_cos_.resize(total);
  scratch_sin_.resize(total);
  // The affine argument is built with the exact reference expression
  // (freq * d + phase, one multiply and one add); only the cos/sin sweep
  // itself goes through the ULP-bounded vector kernels.
  for (std::size_t i = 0; i < total; ++i) {
    scratch_arg_[i] = sin_spatial_freq_[i] * distance_m + sin_phase_[i];
  }
  vecm::sin_cos(scratch_arg_.data(), scratch_cos_.data(), scratch_sin_.data(),
                total);
  for (std::size_t t = 0; t < taps_.size(); ++t) {
    const Tap& tap = taps_[t];
    // Per-tap reduction in reference order (sequential over the tap's
    // slice), so no reassociation widens the seam.
    double re = 0.0;
    double im = 0.0;
    for (std::size_t i = tap.sin_begin; i < tap.sin_begin + tap.sin_count;
         ++i) {
      re += scratch_cos_[i];
      im += scratch_sin_[i];
    }
    std::complex<double> g{re * tap.nlos_fraction, im * tap.nlos_fraction};
    if (tap.los_fraction > 0.0) {
      // One scalar sincos per tap: stays on libm, bitwise-equal to the
      // reference LOS term.
      const double arg = tap.los_spatial_freq * distance_m + tap.los_phase;
      g += std::complex<double>{tap.los_fraction * std::cos(arg),
                                tap.los_fraction * std::sin(arg)};
    }
    gains[t] = g * tap.amplitude;
  }
}

std::complex<double> FadingProcess::tap_gain(const Tap& tap,
                                             double distance_m) const {
  double re = 0.0;
  double im = 0.0;
  const double* freq = sin_spatial_freq_.data() + tap.sin_begin;
  const double* phase = sin_phase_.data() + tap.sin_begin;
  for (std::size_t i = 0; i < tap.sin_count; ++i) {
    const double arg = freq[i] * distance_m + phase[i];
    re += std::cos(arg);
    im += std::sin(arg);
  }
  std::complex<double> g{re * tap.nlos_fraction, im * tap.nlos_fraction};
  if (tap.los_fraction > 0.0) {
    const double arg = tap.los_spatial_freq * distance_m + tap.los_phase;
    g += std::complex<double>{tap.los_fraction * std::cos(arg),
                              tap.los_fraction * std::sin(arg)};
  }
  return g * tap.amplitude;
}

const FadingProcess::TwiddleCache* FadingProcess::twiddles_for(
    std::span<const double> subcarrier_offsets_hz) const {
  for (const TwiddleCache& c : twiddles_) {
    if (c.offsets_hz.size() == subcarrier_offsets_hz.size() &&
        std::equal(c.offsets_hz.begin(), c.offsets_hz.end(),
                   subcarrier_offsets_hz.begin())) {
      return &c;
    }
  }
  if (twiddles_.size() >= kMaxCachedGrids) return nullptr;
  TwiddleCache c;
  c.offsets_hz.assign(subcarrier_offsets_hz.begin(),
                      subcarrier_offsets_hz.end());
  c.rows.reserve(taps_.size() * subcarrier_offsets_hz.size());
  for (const auto& tap : taps_) {
    for (std::size_t k = 0; k < subcarrier_offsets_hz.size(); ++k) {
      // Verbatim the reference twiddle expression: bitwise identity with
      // ReferenceFading depends on computing the exact same arg and the
      // exact same cos/sin here, merely at a different time.
      const double arg = -2.0 * kPi * subcarrier_offsets_hz[k] * tap.delay_s;
      c.rows.emplace_back(std::cos(arg), std::sin(arg));
    }
  }
  twiddles_.push_back(std::move(c));
  return &twiddles_.back();
}

void FadingProcess::response(double distance_m,
                             std::span<const double> subcarrier_offsets_hz,
                             std::span<std::complex<double>> out) const {
  for (auto& h : out) h = {0.0, 0.0};
  scratch_gain_.resize(taps_.size());
  if (vecm::available()) {
    batch_tap_gains(distance_m, scratch_gain_.data());
  } else {
    for (std::size_t t = 0; t < taps_.size(); ++t) {
      scratch_gain_[t] = tap_gain(taps_[t], distance_m);
    }
  }
  const TwiddleCache* cache = twiddles_for(subcarrier_offsets_hz);
  if (cache != nullptr) {
    const std::complex<double>* row = cache->rows.data();
    for (std::size_t t = 0; t < taps_.size(); ++t) {
      const std::complex<double> g = scratch_gain_[t];
      for (std::size_t k = 0; k < out.size(); ++k) {
        out[k] += g * row[k];
      }
      row += subcarrier_offsets_hz.size();
    }
    return;
  }
  // Cache capacity exhausted: compute twiddles inline (the original loop).
  for (std::size_t t = 0; t < taps_.size(); ++t) {
    const std::complex<double> g = scratch_gain_[t];
    for (std::size_t k = 0; k < out.size(); ++k) {
      const double arg =
          -2.0 * kPi * subcarrier_offsets_hz[k] * taps_[t].delay_s;
      out[k] += g * std::complex<double>{std::cos(arg), std::sin(arg)};
    }
  }
}

double FadingProcess::wideband_gain(
    double distance_m, std::span<const double> subcarrier_offsets_hz) const {
  std::array<std::complex<double>, kNumSubcarriers> h;
  const std::size_t n = std::min(subcarrier_offsets_hz.size(), h.size());
  response(distance_m, subcarrier_offsets_hz.first(n),
           std::span<std::complex<double>>(h.data(), n));
  double p = 0.0;
  for (std::size_t k = 0; k < n; ++k) p += std::norm(h[k]);
  return p / static_cast<double>(n);
}

std::span<const double> ht20_subcarrier_offsets_hz() {
  static const std::array<double, kNumSubcarriers> offsets = [] {
    std::array<double, kNumSubcarriers> o{};
    std::size_t idx = 0;
    for (int k = -28; k <= 28; ++k) {
      if (k == 0) continue;
      o[idx++] = static_cast<double>(k) * 312.5e3;
    }
    return o;
  }();
  return {offsets.data(), offsets.size()};
}

}  // namespace wgtt::channel
