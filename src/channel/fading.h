// Small-scale frequency-selective fading.
//
// Tapped-delay-line model: a handful of multipath taps with an exponential
// power-delay profile; each tap's complex gain is a sum-of-sinusoids process
// parameterised by *travelled distance* rather than time (wavenumber-domain
// Jakes model).  This makes channel coherence a spatial property — roughly a
// wavelength (12 cm at 2.4 GHz) — so coherence *time* scales as lambda / v
// and lands at the paper's 2-3 ms for driving speeds automatically.
//
// The per-subcarrier response H_k = sum_t h_t * exp(-j 2 pi f_k tau_t) is the
// quantity the Atheros CSI tool reports per frame; it is what drives both
// the ESNR computation and the frequency-selective fades of paper Fig. 2.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "util/rng.h"

namespace wgtt::channel {

struct TapSpec {
  double delay_ns = 0.0;
  double relative_power_db = 0.0;  // before normalisation
  double rician_k = 0.0;           // linear K factor; 0 => Rayleigh
};

struct FadingConfig {
  double carrier_hz = 2.462e9;  // Wi-Fi channel 11
  int sinusoids_per_tap = 16;
  /// Street-canyon power-delay profile; small delay spread, as the paper
  /// notes the picocells keep delay spread indoor-like (§4).
  std::vector<TapSpec> taps = {
      {0.0, 0.0, 4.0},    // quasi-LOS tap, Rician K = 6 dB
      {50.0, -3.0, 0.0},  {120.0, -7.0, 0.0},
      {250.0, -12.0, 0.0}, {400.0, -18.0, 0.0},
  };
};

/// One fading realisation for one AP-client link (reciprocal: the same
/// process serves uplink and downlink, which is what lets WGTT predict
/// downlink delivery from uplink CSI).
///
/// Hot-path layout (see channel::ReferenceFading for the retained original
/// and DESIGN.md "Reference-vs-optimized seams" for the equivalence
/// contract): the per-subcarrier twiddle exp(-j 2 pi f_k tau_t) depends
/// only on the subcarrier grid and the tap delay — not on distance — so it
/// is computed once per grid and cached, turning the inner response loop
/// into a complex multiply-add over precomputed rows.  Sinusoid state is
/// one flat SoA pair (spatial_freq / phase) shared by all taps so the
/// per-sample cos/sin sweep runs over contiguous memory; when the libmvec
/// kernels are available (vecm::available()) that sweep is vectorized,
/// which bounds the divergence from the reference at a few ulp per
/// sinusoid instead of bitwise identity.  Every other expression is kept
/// verbatim from the reference — the sums over sinusoids, the LOS term,
/// and the twiddle accumulation keep the reference association exactly —
/// so tests/fading_diff_test.cpp can pin a tight ULP bound.
class FadingProcess {
 public:
  FadingProcess(FadingConfig cfg, Rng rng);

  /// Complex per-subcarrier response at the given travelled distance, for
  /// subcarrier offsets (Hz, relative to carrier).  Normalised so that the
  /// ensemble-average power per subcarrier is 1 (0 dB).
  void response(double distance_m, std::span<const double> subcarrier_offsets_hz,
                std::span<std::complex<double>> out) const;

  /// Wideband power gain (linear, average over subcarriers) at a distance —
  /// a cheaper query used for RSSI-style measurements.
  double wideband_gain(double distance_m,
                       std::span<const double> subcarrier_offsets_hz) const;

  std::size_t tap_count() const { return taps_.size(); }

 private:
  struct Tap {
    double amplitude = 0.0;       // sqrt of normalised tap power
    double delay_s = 0.0;
    double los_fraction = 0.0;    // sqrt(K/(K+1))
    double nlos_fraction = 0.0;   // sqrt(1/(K+1)) / sqrt(N)
    double los_spatial_freq = 0.0;
    double los_phase = 0.0;
    std::size_t sin_begin = 0;    // first sinusoid in the flat SoA arrays
    std::size_t sin_count = 0;
  };
  /// Distance-independent per-grid twiddle rows, taps x subcarriers.  Keyed
  /// by the grid *contents* (spans may point at reused stack storage), built
  /// lazily on first use; the simulation only ever presents the HT20 grid,
  /// so this holds one entry in practice.
  struct TwiddleCache {
    std::vector<double> offsets_hz;
    std::vector<std::complex<double>> rows;  // taps_.size() * offsets size
  };

  std::complex<double> tap_gain(const Tap& tap, double distance_m) const;
  /// All taps' gains at one distance: one vectorized cos/sin sweep over the
  /// flat sinusoid arrays, then per-tap reductions in reference order.
  void batch_tap_gains(double distance_m, std::complex<double>* gains) const;
  const TwiddleCache* twiddles_for(
      std::span<const double> subcarrier_offsets_hz) const;

  std::vector<Tap> taps_;
  std::vector<double> sin_spatial_freq_;  // k * cos(theta_n), all taps, SoA
  std::vector<double> sin_phase_;
  mutable std::vector<TwiddleCache> twiddles_;
  // Per-call scratch for the vectorized sweep (single-simulation objects
  // are single-threaded, like the twiddle cache above).
  mutable std::vector<double> scratch_arg_, scratch_cos_, scratch_sin_;
  mutable std::vector<std::complex<double>> scratch_gain_;
};

/// 802.11n HT20 OFDM: 56 used subcarriers at +/-(1..28) * 312.5 kHz.
constexpr std::size_t kNumSubcarriers = 56;
std::span<const double> ht20_subcarrier_offsets_hz();

}  // namespace wgtt::channel
