// Client mobility models.
//
// The paper's clients are cars driving along a straight road at 5-35 mph;
// multi-client scenarios (Fig. 19) add following / parallel / opposing
// patterns, all of which are linear trajectories with different start
// offsets, lanes (y), and directions.
#pragma once

#include <memory>
#include <vector>

#include "channel/geometry.h"
#include "util/time.h"

namespace wgtt::channel {

/// A client trajectory: position and velocity as a function of time.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  virtual Vec3 position(Time t) const = 0;
  virtual Vec3 velocity(Time t) const = 0;
  double speed_mps(Time t) const { return velocity(t).norm(); }
  /// Cumulative distance travelled since t = 0 (drives spatial fading).
  virtual double distance_travelled(Time t) const = 0;
};

/// Stationary client (the "0 mph" point of Fig. 13).
class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(Vec3 pos) : pos_(pos) {}
  Vec3 position(Time) const override { return pos_; }
  Vec3 velocity(Time) const override { return {}; }
  double distance_travelled(Time) const override { return 0.0; }

 private:
  Vec3 pos_;
};

/// Constant-velocity straight-line motion.
class LinearMobility final : public MobilityModel {
 public:
  LinearMobility(Vec3 start, Vec3 velocity_mps)
      : start_(start), vel_(velocity_mps) {}
  Vec3 position(Time t) const override { return start_ + vel_ * t.to_sec(); }
  Vec3 velocity(Time) const override { return vel_; }
  double distance_travelled(Time t) const override {
    return vel_.norm() * t.to_sec();
  }

 private:
  Vec3 start_;
  Vec3 vel_;
};

/// Piecewise-linear motion through waypoints at given times; clamps at the
/// ends.  Used for stop-and-go traffic experiments.
class WaypointMobility final : public MobilityModel {
 public:
  struct Waypoint {
    Time when;
    Vec3 pos;
  };
  /// Waypoints must be sorted by time and non-empty.
  explicit WaypointMobility(std::vector<Waypoint> waypoints);
  Vec3 position(Time t) const override;
  Vec3 velocity(Time t) const override;
  double distance_travelled(Time t) const override;

 private:
  /// Index of the segment containing t (last waypoint index < t, clamped).
  std::size_t segment(Time t) const;
  std::vector<Waypoint> wp_;
  std::vector<double> cum_dist_;  // distance travelled up to each waypoint
};

}  // namespace wgtt::channel
