// Client mobility models.
//
// The paper's clients are cars driving along a straight road at 5-35 mph;
// multi-client scenarios (Fig. 19) add following / parallel / opposing
// patterns, all of which are linear trajectories with different start
// offsets, lanes (y), and directions.
#pragma once

#include <cmath>
#include <memory>
#include <vector>

#include "channel/geometry.h"
#include "util/time.h"

namespace wgtt::channel {

/// A client trajectory: position and velocity as a function of time.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  virtual Vec3 position(Time t) const = 0;
  virtual Vec3 velocity(Time t) const = 0;
  double speed_mps(Time t) const { return velocity(t).norm(); }
  /// Cumulative distance travelled since t = 0 (drives spatial fading).
  virtual double distance_travelled(Time t) const = 0;
};

/// Stationary client (the "0 mph" point of Fig. 13).
class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(Vec3 pos) : pos_(pos) {}
  Vec3 position(Time) const override { return pos_; }
  Vec3 velocity(Time) const override { return {}; }
  double distance_travelled(Time) const override { return 0.0; }

 private:
  Vec3 pos_;
};

/// Constant-velocity straight-line motion.
class LinearMobility final : public MobilityModel {
 public:
  LinearMobility(Vec3 start, Vec3 velocity_mps)
      : start_(start), vel_(velocity_mps) {}
  Vec3 position(Time t) const override { return start_ + vel_ * t.to_sec(); }
  Vec3 velocity(Time) const override { return vel_; }
  double distance_travelled(Time t) const override {
    return vel_.norm() * t.to_sec();
  }

 private:
  Vec3 start_;
  Vec3 vel_;
};

/// Shuttle service: constant-speed back-and-forth between two endpoints (a
/// triangle wave along the segment).  Soak runs use this to keep a client
/// crossing picocells for hours of simulated time; `start_offset_m` phases
/// clients apart along the route.
class PingPongMobility final : public MobilityModel {
 public:
  PingPongMobility(Vec3 a, Vec3 b, double speed_mps,
                   double start_offset_m = 0.0)
      : a_(a), b_(b), speed_(speed_mps), offset_(start_offset_m) {
    leg_ = (b_ - a_).norm();
  }
  Vec3 position(Time t) const override {
    if (leg_ <= 0.0 || speed_ <= 0.0) return a_;
    return a_ + (b_ - a_) * (phase(t) / leg_);
  }
  Vec3 velocity(Time t) const override {
    if (leg_ <= 0.0 || speed_ <= 0.0) return {};
    const double cycle =
        std::fmod(offset_ + distance_travelled(t), 2.0 * leg_);
    const Vec3 dir = (b_ - a_) * (1.0 / leg_);
    return cycle < leg_ ? dir * speed_ : dir * -speed_;
  }
  double distance_travelled(Time t) const override {
    return speed_ * t.to_sec();
  }

 private:
  /// Distance from `a_` along the segment at time t (triangle wave).
  double phase(Time t) const {
    const double cycle =
        std::fmod(offset_ + distance_travelled(t), 2.0 * leg_);
    return cycle < leg_ ? cycle : 2.0 * leg_ - cycle;
  }
  Vec3 a_;
  Vec3 b_;
  double speed_ = 0.0;
  double offset_ = 0.0;
  double leg_ = 0.0;
};

/// Piecewise-linear motion through waypoints at given times; clamps at the
/// ends.  Used for stop-and-go traffic experiments.
class WaypointMobility final : public MobilityModel {
 public:
  struct Waypoint {
    Time when;
    Vec3 pos;
  };
  /// Waypoints must be sorted by time and non-empty.
  explicit WaypointMobility(std::vector<Waypoint> waypoints);
  Vec3 position(Time t) const override;
  Vec3 velocity(Time t) const override;
  double distance_travelled(Time t) const override;

 private:
  /// Index of the segment containing t (last waypoint index < t, clamped).
  std::size_t segment(Time t) const;
  std::vector<Waypoint> wp_;
  std::vector<double> cum_dist_;  // distance travelled up to each waypoint
};

}  // namespace wgtt::channel
