#include "channel/reference_fading.h"

#include <array>
#include <cmath>

#include "util/units.h"

namespace wgtt::channel {

ReferenceFading::ReferenceFading(FadingConfig cfg, Rng rng) {
  // Normalise tap powers to sum to 1.
  double total = 0.0;
  for (const auto& spec : cfg.taps) total += db_to_linear(spec.relative_power_db);

  const double wavenumber = 2.0 * kPi / wavelength_m(cfg.carrier_hz);
  const int n = cfg.sinusoids_per_tap;

  taps_.reserve(cfg.taps.size());
  for (const auto& spec : cfg.taps) {
    Tap tap;
    tap.amplitude = std::sqrt(db_to_linear(spec.relative_power_db) / total);
    tap.delay_s = spec.delay_ns * 1e-9;
    const double k_factor = spec.rician_k;
    tap.los_fraction = std::sqrt(k_factor / (k_factor + 1.0));
    tap.nlos_fraction = std::sqrt(1.0 / (k_factor + 1.0)) /
                        std::sqrt(static_cast<double>(n));
    tap.los_spatial_freq = wavenumber * std::cos(rng.uniform(0.0, kPi));
    tap.los_phase = rng.uniform(0.0, 2.0 * kPi);
    tap.spatial_freq.reserve(static_cast<std::size_t>(n));
    tap.phase.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      // Angles of arrival uniform around the circle (Clarke's model).
      const double theta = rng.uniform(0.0, 2.0 * kPi);
      tap.spatial_freq.push_back(wavenumber * std::cos(theta));
      tap.phase.push_back(rng.uniform(0.0, 2.0 * kPi));
    }
    taps_.push_back(std::move(tap));
  }
}

std::complex<double> ReferenceFading::tap_gain(const Tap& tap,
                                               double distance_m) const {
  double re = 0.0;
  double im = 0.0;
  for (std::size_t i = 0; i < tap.spatial_freq.size(); ++i) {
    const double arg = tap.spatial_freq[i] * distance_m + tap.phase[i];
    re += std::cos(arg);
    im += std::sin(arg);
  }
  std::complex<double> g{re * tap.nlos_fraction, im * tap.nlos_fraction};
  if (tap.los_fraction > 0.0) {
    const double arg = tap.los_spatial_freq * distance_m + tap.los_phase;
    g += std::complex<double>{tap.los_fraction * std::cos(arg),
                              tap.los_fraction * std::sin(arg)};
  }
  return g * tap.amplitude;
}

void ReferenceFading::response(double distance_m,
                               std::span<const double> subcarrier_offsets_hz,
                               std::span<std::complex<double>> out) const {
  for (auto& h : out) h = {0.0, 0.0};
  for (const auto& tap : taps_) {
    const std::complex<double> g = tap_gain(tap, distance_m);
    for (std::size_t k = 0; k < out.size(); ++k) {
      const double arg = -2.0 * kPi * subcarrier_offsets_hz[k] * tap.delay_s;
      out[k] += g * std::complex<double>{std::cos(arg), std::sin(arg)};
    }
  }
}

double ReferenceFading::wideband_gain(
    double distance_m, std::span<const double> subcarrier_offsets_hz) const {
  std::array<std::complex<double>, kNumSubcarriers> h;
  const std::size_t n = std::min(subcarrier_offsets_hz.size(), h.size());
  response(distance_m, subcarrier_offsets_hz.first(n),
           std::span<std::complex<double>>(h.data(), n));
  double p = 0.0;
  for (std::size_t k = 0; k < n; ++k) p += std::norm(h[k]);
  return p / static_cast<double>(n);
}

}  // namespace wgtt::channel
