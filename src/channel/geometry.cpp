#include "channel/geometry.h"

#include <algorithm>

namespace wgtt::channel {

double angle_between(const Vec3& a, const Vec3& b) {
  const double na = a.norm();
  const double nb = b.norm();
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  const double c = std::clamp(a.dot(b) / (na * nb), -1.0, 1.0);
  return std::acos(c);
}

}  // namespace wgtt::channel
