// Antenna gain patterns.
//
// The WGTT testbed uses Laird 14 dBi parabolic antennas with a 21-degree
// half-power beamwidth aimed at the road (paper §4.2) — these create the
// meter-scale picocells.  Clients use small omnidirectional antennas.
#pragma once

#include <memory>

#include "channel/geometry.h"

namespace wgtt::channel {

class AntennaPattern {
 public:
  virtual ~AntennaPattern() = default;
  /// Gain in dBi at `angle_rad` off boresight (radians, [0, pi]).
  virtual double gain_dbi(double angle_rad) const = 0;
};

/// Isotropic-in-practice client antenna.
class OmniAntenna final : public AntennaPattern {
 public:
  explicit OmniAntenna(double gain_dbi = 2.0) : gain_(gain_dbi) {}
  double gain_dbi(double) const override { return gain_; }

 private:
  double gain_;
};

/// Parabolic reflector: Gaussian main lobe (the standard 12*(theta/hpbw)^2
/// rolloff) limited below by a side-lobe floor.  The paper notes measurable
/// side lobes — they matter for Block-ACK overhearing by adjacent APs.
class ParabolicAntenna final : public AntennaPattern {
 public:
  ParabolicAntenna(double peak_gain_dbi = 14.0, double hpbw_deg = 21.0,
                   double side_lobe_rejection_db = 18.0);
  double gain_dbi(double angle_rad) const override;

  double peak_gain_dbi() const { return peak_; }
  double hpbw_deg() const { return hpbw_deg_; }

 private:
  double peak_;
  double hpbw_deg_;
  double floor_dbi_;  // peak - side lobe rejection
};

}  // namespace wgtt::channel
