// Large-scale path loss.
//
// Log-distance model calibrated for 2.4 GHz roadside propagation: free-space
// loss at the 1 m reference distance plus a distance exponent slightly above
// free space (street-level clutter, ground reflections).
#pragma once

namespace wgtt::channel {

struct PathLossConfig {
  double exponent = 2.7;            // urban roadside
  double reference_loss_db = 40.27; // FSPL at 1 m, 2.462 GHz (channel 11)
  double min_distance_m = 1.0;      // clamp to avoid near-field singularity
};

class LogDistancePathLoss {
 public:
  explicit LogDistancePathLoss(PathLossConfig cfg = {});
  /// Path loss in dB (positive) at the given distance in meters.
  double loss_db(double distance_m) const;

 private:
  PathLossConfig cfg_;
};

}  // namespace wgtt::channel
