// Reference (unoptimized) fading implementation — the correctness seam for
// the hot-path campaign.
//
// `ReferenceFading` is a line-for-line retention of the original scalar
// `FadingProcess`: per response call it recomputes every per-subcarrier
// twiddle exp(-j 2 pi f_k tau_t) from scratch, with per-tap sinusoid state
// in the original AoS-of-vectors layout.  The optimized `FadingProcess`
// (fading.h) must stay *bitwise identical* to this class — the twiddles are
// distance-independent, so hoisting them into a per-grid cache changes
// where cos/sin run, not what they compute, and the accumulation expression
// `out[k] += g * twiddle` is kept verbatim so floating-point contraction
// behaves the same.  tests/fading_diff_test.cpp (ctest label `diff`)
// enforces the equivalence across randomized configs, grids and distances;
// DESIGN.md ("Reference-vs-optimized seams") documents when bitwise
// identity vs ULP bounds applies.
//
// This class is deliberately NOT used by the simulation: it exists so the
// differential suite always has the original math to compare against, even
// after further optimization passes rework `FadingProcess` internals.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "channel/fading.h"
#include "util/rng.h"

namespace wgtt::channel {

/// The original scalar sum-of-sinusoids tapped-delay-line fading process.
/// Construction consumes the RNG stream in exactly the same order as
/// `FadingProcess`, so both classes seeded with the same fork produce the
/// same realisation — any drift in draw order or count shows up as a
/// response mismatch in the differential suite.
class ReferenceFading {
 public:
  ReferenceFading(FadingConfig cfg, Rng rng);

  /// Complex per-subcarrier response at the given travelled distance; the
  /// original triple loop (taps x sinusoids + taps x subcarriers) with no
  /// caching of the distance-independent subcarrier twiddles.
  void response(double distance_m,
                std::span<const double> subcarrier_offsets_hz,
                std::span<std::complex<double>> out) const;

  /// Wideband power gain (linear, average over subcarriers) at a distance.
  double wideband_gain(double distance_m,
                       std::span<const double> subcarrier_offsets_hz) const;

  std::size_t tap_count() const { return taps_.size(); }

 private:
  struct Tap {
    double amplitude = 0.0;
    double delay_s = 0.0;
    double los_fraction = 0.0;
    double nlos_fraction = 0.0;
    double los_spatial_freq = 0.0;
    double los_phase = 0.0;
    std::vector<double> spatial_freq;
    std::vector<double> phase;
  };

  std::complex<double> tap_gain(const Tap& tap, double distance_m) const;

  std::vector<Tap> taps_;
};

}  // namespace wgtt::channel
