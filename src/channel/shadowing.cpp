#include "channel/shadowing.h"

#include <cmath>
#include <cstddef>

namespace wgtt::channel {

ShadowingProcess::ShadowingProcess(ShadowingConfig cfg, Rng rng)
    : cfg_(cfg), rng_(rng) {
  rho_ = std::exp(-cfg_.grid_step_m / cfg_.decorrelation_m);
}

double ShadowingProcess::grid_value(std::size_t i) {
  while (grid_.size() <= i) {
    if (grid_.empty()) {
      grid_.push_back(rng_.gaussian(0.0, cfg_.sigma_db));
    } else {
      // AR(1): x_{n+1} = rho x_n + sqrt(1-rho^2) w,  w ~ N(0, sigma^2),
      // which keeps the marginal variance at sigma^2 for all n.
      const double innov = rng_.gaussian(0.0, cfg_.sigma_db);
      grid_.push_back(rho_ * grid_.back() +
                      std::sqrt(1.0 - rho_ * rho_) * innov);
    }
  }
  return grid_[i];
}

double ShadowingProcess::at(double distance_m) {
  if (distance_m < 0.0) distance_m = 0.0;
  const double pos = distance_m / cfg_.grid_step_m;
  const auto i = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  const double a = grid_value(i);
  const double b = grid_value(i + 1);
  return a * (1.0 - frac) + b * frac;
}

}  // namespace wgtt::channel
