#include "channel/antenna.h"

#include <algorithm>
#include <cmath>

#include "util/units.h"

namespace wgtt::channel {

ParabolicAntenna::ParabolicAntenna(double peak_gain_dbi, double hpbw_deg,
                                   double side_lobe_rejection_db)
    : peak_(peak_gain_dbi),
      hpbw_deg_(hpbw_deg),
      floor_dbi_(peak_gain_dbi - side_lobe_rejection_db) {}

double ParabolicAntenna::gain_dbi(double angle_rad) const {
  const double theta_deg = std::abs(rad_to_deg(angle_rad));
  // 3GPP-style parabolic main lobe: -3 dB at theta = hpbw/2.
  const double rolloff = 12.0 * (theta_deg / hpbw_deg_) * (theta_deg / hpbw_deg_);
  return std::max(peak_ - rolloff, floor_dbi_);
}

}  // namespace wgtt::channel
