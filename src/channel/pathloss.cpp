#include "channel/pathloss.h"

#include <algorithm>
#include <cmath>

namespace wgtt::channel {

LogDistancePathLoss::LogDistancePathLoss(PathLossConfig cfg) : cfg_(cfg) {}

double LogDistancePathLoss::loss_db(double distance_m) const {
  const double d = std::max(distance_m, cfg_.min_distance_m);
  return cfg_.reference_loss_db + 10.0 * cfg_.exponent * std::log10(d);
}

}  // namespace wgtt::channel
