// Spatially-correlated log-normal shadowing (Gudmundson model).
//
// Shadowing is a function of the client's position along its trajectory: two
// nearby positions see correlated obstructions.  We realize one independent
// 1-D Gaussian process per AP-client link as an AR(1) sequence on a fixed
// spatial grid, interpolated between grid points, so a query at any travelled
// distance is O(1) amortized and fully deterministic given the link's seed.
#pragma once

#include <vector>

#include "util/rng.h"

namespace wgtt::channel {

struct ShadowingConfig {
  double sigma_db = 3.0;          // standard deviation
  double decorrelation_m = 10.0;  // Gudmundson decorrelation distance
  double grid_step_m = 1.0;       // spatial sampling step
};

class ShadowingProcess {
 public:
  ShadowingProcess(ShadowingConfig cfg, Rng rng);

  /// Shadowing value in dB at the given travelled distance (>= 0).
  double at(double distance_m);

 private:
  double grid_value(std::size_t i);

  ShadowingConfig cfg_;
  Rng rng_;
  double rho_;  // AR(1) coefficient per grid step
  std::vector<double> grid_;
};

}  // namespace wgtt::channel
