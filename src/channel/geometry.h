// Road-side geometry primitives.
//
// Coordinate convention (matches paper Figs. 9/10): x runs along the road,
// y runs across the road (positive toward the building that hosts the APs),
// z is height above the road surface.  APs sit on the third floor of the
// building (z ~ 8 m, y ~ 10-15 m); client antennas ride in cars (z ~ 1.5 m).
#pragma once

#include <cmath>

namespace wgtt::channel {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }

  double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  double norm() const { return std::sqrt(dot(*this)); }

  /// Unit vector in the same direction; the zero vector maps to +x.
  Vec3 normalized() const {
    const double n = norm();
    if (n <= 0.0) return {1.0, 0.0, 0.0};
    return {x / n, y / n, z / n};
  }
};

inline double distance(const Vec3& a, const Vec3& b) { return (b - a).norm(); }

/// Angle in radians between two direction vectors, in [0, pi].
double angle_between(const Vec3& a, const Vec3& b);

}  // namespace wgtt::channel
