// The composite radio channel for the roadside testbed.
//
// One ChannelModel instance owns every AP-client link's propagation state:
// deterministic geometry (distance + antenna pattern), spatially-correlated
// shadowing, and frequency-selective small-scale fading.  Links are
// reciprocal — uplink and downlink share one fading realisation — which is
// the physical property WGTT relies on when it predicts downlink delivery
// from CSI measured on client *uplink* frames (§3.1.1).
#pragma once

#include <array>
#include <complex>
#include <limits>
#include <map>
#include <memory>
#include <vector>

#include "channel/antenna.h"
#include "channel/fading.h"
#include "channel/geometry.h"
#include "channel/mobility.h"
#include "channel/pathloss.h"
#include "channel/shadowing.h"
#include "net/packet.h"
#include "phy/csi.h"
#include "util/profiler.h"
#include "util/rng.h"
#include "util/time.h"

namespace wgtt::channel {

struct RadioConfig {
  double ap_tx_power_dbm = 20.0;
  double client_tx_power_dbm = 15.0;
  /// Fixed loss in the AP's RF path (splitter-combiner, cabling, window
  /// glass, street clutter).  Applied to both link directions — it sits
  /// between the AP's radio and the air, so the channel stays reciprocal.
  double ap_system_loss_db = 0.0;
  double bandwidth_hz = 20e6;
  double noise_figure_db = 6.0;
  double carrier_hz = 2.462e9;  // channel 11
};

struct ApSite {
  net::NodeId id = 0;
  Vec3 position;
  Vec3 boresight;  // direction the directional antenna points
  std::shared_ptr<const AntennaPattern> antenna;
};

class ChannelModel {
 public:
  ChannelModel(RadioConfig radio, PathLossConfig pathloss,
               ShadowingConfig shadowing, FadingConfig fading, Rng rng);

  void add_ap(ApSite site);
  void add_client(net::NodeId id,
                  std::shared_ptr<const MobilityModel> mobility,
                  double antenna_gain_dbi = 2.0);

  const std::vector<net::NodeId>& ap_ids() const { return ap_order_; }
  const ApSite& ap(net::NodeId id) const;
  const MobilityModel& client_mobility(net::NodeId id) const;
  double noise_floor_dbm() const;
  const RadioConfig& radio() const { return radio_; }

  /// Per-subcarrier CSI at the client for a frame transmitted by `ap`.
  phy::Csi downlink_csi(net::NodeId ap, net::NodeId client, Time t) const;

  /// Per-subcarrier CSI at `ap` for a frame transmitted by the client —
  /// what the Atheros CSI tool measures and WGTT reports to the controller.
  phy::Csi uplink_csi(net::NodeId ap, net::NodeId client, Time t) const;

  /// Wideband received power (dBm) including fading — the RSSI a beacon
  /// from `ap` produces at the client (baseline 802.11r's metric).
  double downlink_rssi_dbm(net::NodeId ap, net::NodeId client, Time t) const;
  double uplink_rssi_dbm(net::NodeId ap, net::NodeId client, Time t) const;

  /// Large-scale path gain (dB, excludes fast fading) between two clients —
  /// carrier-sense coupling between cars sharing the road.
  double client_to_client_gain_db(net::NodeId a, net::NodeId b, Time t) const;

  /// Generic large-scale gain between any two attached nodes (AP or client);
  /// used by the MAC medium for carrier sense and interference sums.
  double path_gain_db(net::NodeId a, net::NodeId b, Time t) const;

  /// Ground truth for the switching-accuracy metric (paper Table 2): the AP
  /// with the maximum instantaneous downlink selection-ESNR to the client.
  net::NodeId best_ap(net::NodeId client, Time t) const;

  /// Downlink selection ESNR without materializing a full Csi — skips the
  /// per-subcarrier RSSI power sum that ESNR-only consumers (best_ap, the
  /// drive-metrics sampler, the 802.11k scan) never read.  Bitwise equal to
  /// phy::selection_esnr_db(downlink_csi(ap, client, t)).
  double downlink_selection_esnr_db(net::NodeId ap, net::NodeId client,
                                    Time t) const;

  /// Candidate-AP pruning for scale scenarios: when a finite radius is set,
  /// exhaustive AP scans (best_ap, metrics sampling, background scans) only
  /// evaluate APs within `meters` of the client's position.  The default
  /// (infinity) evaluates every AP, byte-identical to the pre-pruning code;
  /// paper-scale testbeds keep the default, city-scale sweeps prune.
  void set_candidate_radius(double meters);
  double candidate_radius_m() const { return candidate_radius_m_; }

  /// APs to evaluate for `client` at `t`, in deployment order: all APs when
  /// the radius is unlimited, otherwise those within the radius (falling
  /// back to all APs if none qualify, so selection never goes empty).
  void candidate_aps(net::NodeId client, Time t,
                     std::vector<net::NodeId>& out) const;

 private:
  struct ClientInfo {
    std::shared_ptr<const MobilityModel> mobility;
    double antenna_gain_dbi = 2.0;
  };
  struct Link {
    std::unique_ptr<FadingProcess> fading;
    std::unique_ptr<ShadowingProcess> shadowing;
    // Hot-path memos, all bitwise-transparent (pure functions of their
    // keys).  The fading response and its per-subcarrier dB fades depend
    // only on travelled distance, so uplink/downlink CSI at one instant —
    // and every sample of a parked client — share one computation; the
    // whole-Csi memo additionally catches the data/BA pattern of sampling
    // the same link twice at the same instant and tx power.
    double h_distance = -1.0;  // distances are >= 0; -1 = empty memo
    bool h_valid = false;
    std::array<std::complex<double>, kNumSubcarriers> h;
    std::array<double, kNumSubcarriers> fade_db;
    // Whole-Csi / selection-ESNR memos keyed on (travelled distance,
    // tx power + large-scale gain): every double the synthesis reads is a
    // function of that pair, so equal keys at different instants (a parked
    // client, or the data/BA sampling pattern) yield identical results —
    // only measured_at is patched to the query time.
    bool csi_valid = false;
    double csi_key_travelled = 0.0;
    double csi_key_base_dbm = 0.0;
    phy::Csi csi;
    bool esnr_valid = false;
    double esnr_key_travelled = 0.0;
    double esnr_key_base_dbm = 0.0;
    double esnr_db = 0.0;
  };

  /// Large-scale gain: antenna gains - path loss - shadowing (dB).
  double large_scale_gain_db(const ApSite& ap, const ClientInfo& client,
                             Time t) const;
  Link& link(net::NodeId ap, net::NodeId client) const;
  phy::Csi make_csi(net::NodeId ap, net::NodeId client, Time t,
                    double tx_power_dbm) const;
  /// Refresh l.h / l.fade_db for the client's travelled distance at `t`.
  void refresh_fading(Link& l, double travelled) const;

  RadioConfig radio_;
  LogDistancePathLoss pathloss_;
  ShadowingConfig shadowing_cfg_;
  FadingConfig fading_cfg_;
  mutable Rng rng_;
  std::map<net::NodeId, ApSite> aps_;
  std::vector<net::NodeId> ap_order_;
  std::map<net::NodeId, ClientInfo> clients_;
  mutable std::map<std::pair<net::NodeId, net::NodeId>, Link> links_;
  double candidate_radius_m_ = std::numeric_limits<double>::infinity();
  // Host-time profiling of the per-subcarrier CSI synthesis (the channel's
  // hot path); null when the sim has no profiler context.
  prof::Profiler* prof_ = nullptr;
  prof::Section* p_csi_ = nullptr;
};

}  // namespace wgtt::channel
