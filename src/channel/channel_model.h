// The composite radio channel for the roadside testbed.
//
// One ChannelModel instance owns every AP-client link's propagation state:
// deterministic geometry (distance + antenna pattern), spatially-correlated
// shadowing, and frequency-selective small-scale fading.  Links are
// reciprocal — uplink and downlink share one fading realisation — which is
// the physical property WGTT relies on when it predicts downlink delivery
// from CSI measured on client *uplink* frames (§3.1.1).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "channel/antenna.h"
#include "channel/fading.h"
#include "channel/geometry.h"
#include "channel/mobility.h"
#include "channel/pathloss.h"
#include "channel/shadowing.h"
#include "net/packet.h"
#include "phy/csi.h"
#include "util/profiler.h"
#include "util/rng.h"
#include "util/time.h"

namespace wgtt::channel {

struct RadioConfig {
  double ap_tx_power_dbm = 20.0;
  double client_tx_power_dbm = 15.0;
  /// Fixed loss in the AP's RF path (splitter-combiner, cabling, window
  /// glass, street clutter).  Applied to both link directions — it sits
  /// between the AP's radio and the air, so the channel stays reciprocal.
  double ap_system_loss_db = 0.0;
  double bandwidth_hz = 20e6;
  double noise_figure_db = 6.0;
  double carrier_hz = 2.462e9;  // channel 11
};

struct ApSite {
  net::NodeId id = 0;
  Vec3 position;
  Vec3 boresight;  // direction the directional antenna points
  std::shared_ptr<const AntennaPattern> antenna;
};

class ChannelModel {
 public:
  ChannelModel(RadioConfig radio, PathLossConfig pathloss,
               ShadowingConfig shadowing, FadingConfig fading, Rng rng);

  void add_ap(ApSite site);
  void add_client(net::NodeId id,
                  std::shared_ptr<const MobilityModel> mobility,
                  double antenna_gain_dbi = 2.0);

  const std::vector<net::NodeId>& ap_ids() const { return ap_order_; }
  const ApSite& ap(net::NodeId id) const;
  const MobilityModel& client_mobility(net::NodeId id) const;
  double noise_floor_dbm() const;
  const RadioConfig& radio() const { return radio_; }

  /// Per-subcarrier CSI at the client for a frame transmitted by `ap`.
  phy::Csi downlink_csi(net::NodeId ap, net::NodeId client, Time t) const;

  /// Per-subcarrier CSI at `ap` for a frame transmitted by the client —
  /// what the Atheros CSI tool measures and WGTT reports to the controller.
  phy::Csi uplink_csi(net::NodeId ap, net::NodeId client, Time t) const;

  /// Wideband received power (dBm) including fading — the RSSI a beacon
  /// from `ap` produces at the client (baseline 802.11r's metric).
  double downlink_rssi_dbm(net::NodeId ap, net::NodeId client, Time t) const;
  double uplink_rssi_dbm(net::NodeId ap, net::NodeId client, Time t) const;

  /// Large-scale path gain (dB, excludes fast fading) between two clients —
  /// carrier-sense coupling between cars sharing the road.
  double client_to_client_gain_db(net::NodeId a, net::NodeId b, Time t) const;

  /// Generic large-scale gain between any two attached nodes (AP or client);
  /// used by the MAC medium for carrier sense and interference sums.
  double path_gain_db(net::NodeId a, net::NodeId b, Time t) const;

  /// Ground truth for the switching-accuracy metric (paper Table 2): the AP
  /// with the maximum instantaneous downlink selection-ESNR to the client.
  net::NodeId best_ap(net::NodeId client, Time t) const;

 private:
  struct ClientInfo {
    std::shared_ptr<const MobilityModel> mobility;
    double antenna_gain_dbi = 2.0;
  };
  struct Link {
    std::unique_ptr<FadingProcess> fading;
    std::unique_ptr<ShadowingProcess> shadowing;
  };

  /// Large-scale gain: antenna gains - path loss - shadowing (dB).
  double large_scale_gain_db(const ApSite& ap, const ClientInfo& client,
                             Time t) const;
  Link& link(net::NodeId ap, net::NodeId client) const;
  phy::Csi make_csi(net::NodeId ap, net::NodeId client, Time t,
                    double tx_power_dbm) const;

  RadioConfig radio_;
  LogDistancePathLoss pathloss_;
  ShadowingConfig shadowing_cfg_;
  FadingConfig fading_cfg_;
  mutable Rng rng_;
  std::map<net::NodeId, ApSite> aps_;
  std::vector<net::NodeId> ap_order_;
  std::map<net::NodeId, ClientInfo> clients_;
  mutable std::map<std::pair<net::NodeId, net::NodeId>, Link> links_;
  // Host-time profiling of the per-subcarrier CSI synthesis (the channel's
  // hot path); null when the sim has no profiler context.
  prof::Profiler* prof_ = nullptr;
  prof::Section* p_csi_ = nullptr;
};

}  // namespace wgtt::channel
