// Multi-client road: three cars share the picocell deployment at 15 mph
// (the paper's Fig. 17 scenario).  Shows per-client throughput under WGTT
// vs the baseline, and the three driving patterns of Fig. 19/20.

#include <cstdio>

#include "scenario/experiment.h"

using namespace wgtt;

namespace {

void run_count_sweep() {
  std::printf("--- per-client TCP throughput vs number of clients (15 mph) "
              "---\n");
  std::printf("%-9s %-12s %-18s\n", "clients", "WGTT", "Enhanced 802.11r");
  for (std::size_t n : {1u, 2u, 3u}) {
    scenario::DriveScenarioConfig cfg;
    cfg.num_clients = n;
    cfg.seed = 11;
    cfg.system = scenario::SystemType::kWgtt;
    const auto w = scenario::run_drive(cfg);
    cfg.system = scenario::SystemType::kEnhanced80211r;
    const auto b = scenario::run_drive(cfg);
    std::printf("%-9zu %6.2f Mb/s  %6.2f Mb/s\n", n, w.mean_goodput_mbps(),
                b.mean_goodput_mbps());
  }
}

void run_patterns() {
  std::printf("\n--- two-car driving patterns (WGTT, UDP 15 Mb/s) ---\n");
  struct Case {
    const char* name;
    scenario::MultiClientPattern pattern;
  };
  const Case cases[] = {
      {"following (3 m gap)", scenario::MultiClientPattern::kFollowing},
      {"parallel lanes", scenario::MultiClientPattern::kParallel},
      {"opposing directions", scenario::MultiClientPattern::kOpposing},
  };
  for (const Case& c : cases) {
    scenario::DriveScenarioConfig cfg;
    cfg.num_clients = 2;
    cfg.pattern = c.pattern;
    cfg.traffic = scenario::TrafficType::kUdpDownlink;
    cfg.seed = 11;
    const auto r = scenario::run_drive(cfg);
    std::printf("%-22s %6.2f Mb/s per client (medium busy %.0f%%)\n", c.name,
                r.mean_goodput_mbps(), r.medium_utilization * 100.0);
  }
}

}  // namespace

int main() {
  run_count_sweep();
  run_patterns();
  return 0;
}
