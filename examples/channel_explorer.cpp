// Channel explorer: prints the raw physics the system rides on — the
// per-AP ESNR a moving client sees millisecond by millisecond (the paper's
// Fig. 2), so you can eyeball the vehicular picocell regime before running
// full experiments.

#include <cstdio>

#include "phy/esnr.h"
#include "scenario/testbed.h"
#include "util/units.h"

using namespace wgtt;

int main() {
  scenario::TestbedConfig tb;
  tb.ap_x = {0.0, 7.5, 15.0};  // three neighbouring picocells
  tb.seed = 3;
  scenario::Testbed bed(tb);
  scenario::WgttNetwork net(bed);  // places the AP radios/antennas

  const double mph = 25.0;
  auto mob = bed.drive_mobility(mph, /*lead_in_m=*/5.0);
  const net::NodeId client = bed.add_client(mob, scenario::kWgttBssid);

  std::printf("client at %.0f mph; ESNR (dB) per AP every 1 ms\n", mph);
  std::printf("%-8s %-8s %-8s %-8s %-6s\n", "t(ms)", "AP1", "AP2", "AP3",
              "best");

  int best_flips = 0;
  net::NodeId prev_best = 0;
  for (int ms = 0; ms <= 3000; ms += 1) {
    const Time t = Time::ms(ms);
    double esnr[3];
    net::NodeId best = 0;
    double best_val = -1e9;
    for (std::size_t a = 0; a < 3; ++a) {
      const net::NodeId ap = bed.ap_ids()[a];
      esnr[a] = phy::selection_esnr_db(bed.channel().downlink_csi(ap, client, t));
      if (esnr[a] > best_val) {
        best_val = esnr[a];
        best = ap;
      }
    }
    if (prev_best != 0 && best != prev_best) ++best_flips;
    prev_best = best;
    if (ms % 100 == 0) {
      std::printf("%-8d %-8.1f %-8.1f %-8.1f AP%u\n", ms, esnr[0], esnr[1],
                  esnr[2], best);
    }
  }
  std::printf("\nbest-AP changed %d times in 3 s (~%.0f per second): the\n"
              "vehicular picocell regime the paper's Fig. 2 shows.\n",
              best_flips, best_flips / 3.0);
  return 0;
}
