// Video commute: stream HD video (VLC-style, 1.5 s pre-buffer) to a client
// driving through the WGTT deployment, and compare the quality of
// experience against the Enhanced 802.11r baseline — the paper's Table 4
// scenario as a runnable example.

#include <cstdio>
#include <memory>

#include "apps/video_stream.h"
#include "scenario/testbed.h"
#include "transport/udp_flow.h"

using namespace wgtt;

namespace {

struct Outcome {
  double rebuffer_ratio;
  std::uint32_t rebuffer_events;
};

Outcome stream_over(bool use_wgtt, double speed_mph) {
  scenario::TestbedConfig tb;
  tb.seed = 7;
  scenario::Testbed bed(tb);
  const Time duration = bed.transit_duration(speed_mph) + Time::ms(500);

  std::unique_ptr<scenario::WgttNetwork> wgtt;
  std::unique_ptr<scenario::BaselineNetwork> baseline;
  net::NodeId client;
  if (use_wgtt) {
    wgtt = std::make_unique<scenario::WgttNetwork>(bed);
    client = wgtt->add_client(bed.drive_mobility(speed_mph));
  } else {
    baseline = std::make_unique<scenario::BaselineNetwork>(bed);
    client = baseline->add_client(bed.drive_mobility(speed_mph));
  }

  transport::IpIdAllocator ip_ids;
  apps::VideoStreamConfig vcfg;
  apps::VideoStreamApp app(bed.sched(), ip_ids, transport::TcpConfig{}, vcfg,
                           /*flow_id=*/100, scenario::kServerId, client);
  if (use_wgtt) {
    wgtt->wire_tcp_downlink(app.connection());
  } else {
    baseline->wire_tcp_downlink(app.connection());
  }
  bed.sched().schedule_at(Time::ms(500), [&app]() { app.start(); });
  bed.sched().run_until(duration);

  return Outcome{app.rebuffer_ratio(duration - Time::ms(500)),
                 app.rebuffer_events()};
}

}  // namespace

int main() {
  std::printf("HD video streaming during a drive-through (720p, 1.5 s "
              "pre-buffer)\n\n");
  std::printf("%-8s %-22s %-22s\n", "speed", "WGTT", "Enhanced 802.11r");
  for (double mph : {5.0, 10.0, 15.0, 20.0}) {
    const Outcome w = stream_over(true, mph);
    const Outcome b = stream_over(false, mph);
    std::printf("%-5.0fmph  ratio=%.2f events=%-3u   ratio=%.2f events=%-3u\n",
                mph, w.rebuffer_ratio, w.rebuffer_events, b.rebuffer_ratio,
                b.rebuffer_events);
  }
  std::printf("\nrebuffer ratio = stalled time / transit time (0 is "
              "uninterrupted playback)\n");
  return 0;
}
