// Tunnel scale-out: the paper's motivating scenario (§1: "users travel at
// high speed through an underground tunnel") and its §7 "large area
// deployment" outlook, as a runnable example.
//
// Builds a 24-AP corridor (3× the testbed), drives a client through it in
// stop-and-go traffic (WaypointMobility: cruise, stop at a light, crawl,
// cruise again), and shows that WGTT's switching tracks the car's actual
// motion — fast switching while moving, none while stopped.

#include <cstdio>

#include "apps/bulk.h"
#include "scenario/testbed.h"
#include "util/units.h"

using namespace wgtt;

int main() {
  // A 24-AP tunnel with uniform 7.5 m spacing.
  scenario::TestbedConfig tb;
  tb.ap_x.clear();
  for (int i = 0; i < 24; ++i) tb.ap_x.push_back(i * 7.5);
  tb.seed = 19;
  scenario::Testbed bed(tb);
  scenario::WgttNetwork net(bed);

  // Stop-and-go trajectory: cruise at ~25 mph, stop for 5 s mid-tunnel,
  // crawl, then cruise out.
  const double v = mph_to_mps(25.0);
  const double crawl = mph_to_mps(5.0);
  std::vector<channel::WaypointMobility::Waypoint> wp;
  double x = -15.0;
  Time t = Time::zero();
  auto leg = [&](double speed_mps, double distance_m) {
    x += distance_m;
    t += Time::sec(distance_m / speed_mps);
    wp.push_back({t, {x, 0.0, 1.5}});
  };
  wp.push_back({Time::zero(), {x, 0.0, 1.5}});
  leg(v, 75.0);        // cruise a third of the tunnel
  t += Time::sec(5.0); // red light
  wp.push_back({t, {x, 0.0, 1.5}});
  leg(crawl, 30.0);    // crawl through congestion
  leg(v, 90.0);        // cruise out
  const Time end = t + Time::sec(1);

  auto mob = std::make_shared<channel::WaypointMobility>(wp);
  const net::NodeId client = net.add_client(mob);

  transport::IpIdAllocator ids;
  apps::BulkTcpApp app(bed.sched(), ids, transport::TcpConfig{}, 100,
                       scenario::kServerId, client);
  net.wire_tcp_downlink(app.connection());
  bed.sched().schedule_at(Time::ms(500), [&app]() { app.start(); });

  // Sample the serving AP once a second to show the switching cadence.
  std::printf("24-AP tunnel, stop-and-go drive (cruise/stop/crawl/cruise)\n");
  std::printf("%-7s %-9s %-11s %s\n", "t(s)", "x(m)", "speed", "serving AP");
  std::function<void()> probe = [&]() {
    const Time now = bed.sched().now();
    const auto pos = mob->position(now);
    const double speed = mps_to_mph(mob->speed_mps(now));
    std::printf("%-7.0f %-9.1f %-8.1fmph AP%u\n", now.to_sec(), pos.x, speed,
                net.controller().active_ap(client));
    if (now + Time::sec(2) < end) {
      bed.sched().schedule(Time::sec(2), probe);
    }
  };
  bed.sched().schedule_at(Time::sec(1), probe);
  bed.sched().run_until(end);

  const double goodput =
      app.connection().goodput().average_mbps_over(end - Time::ms(500));
  std::printf("\nTCP goodput over the whole journey : %.2f Mbit/s\n", goodput);
  std::printf("AP switches                        : %zu\n",
              net.controller().switch_log().size());
  std::printf("switch protocol mean latency       : %.1f ms\n",
              net.controller().stats().switch_latency_ms.mean());
  std::printf("\nNote how switching pauses while the car is stopped (the\n"
              "median-ESNR selection is stable when the channel is) and\n"
              "resumes at ~1 switch per cell once it moves again.\n");
  return 0;
}
