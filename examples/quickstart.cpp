// Quickstart: one client drives past the eight-AP WGTT deployment at
// 15 mph pulling a bulk TCP download, and we print what happened —
// throughput, AP switches, and switching accuracy.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "scenario/experiment.h"

int main() {
  using namespace wgtt;

  scenario::DriveScenarioConfig cfg;
  cfg.system = scenario::SystemType::kWgtt;
  cfg.traffic = scenario::TrafficType::kTcpDownlink;
  cfg.speed_mph = 15.0;
  cfg.seed = 42;

  std::printf("Driving one client through 8 WGTT picocells at %.0f mph...\n",
              cfg.speed_mph);
  const scenario::DriveResult result = scenario::run_drive(cfg);

  const auto& client = result.clients.front();
  std::printf("\n=== results ===\n");
  std::printf("transit time        : %.1f s\n",
              result.measured_duration.to_sec());
  std::printf("TCP goodput         : %.2f Mbit/s\n", client.goodput_mbps);
  std::printf("AP switches         : %zu\n", result.switches.size());
  std::printf("switching accuracy  : %.1f %%\n",
              client.switching_accuracy * 100.0);
  std::printf("TCP timeouts        : %llu\n",
              static_cast<unsigned long long>(client.tcp_stats.timeouts));
  std::printf("medium utilization  : %.1f %%\n",
              result.medium_utilization * 100.0);

  std::printf("\nthroughput over time (500 ms bins):\n");
  for (const auto& [t, mbps] : client.throughput_bins) {
    std::printf("  t=%5.1fs  %6.2f Mbit/s\n", t.to_sec(), mbps);
  }
  return 0;
}
